// The copy-order chase: the PTIME fixpoint algorithm of Theorem 6.1.
//
// Starting from the initial partial currency orders, order information is
// propagated along copy functions in both directions (source → target by
// ≺-compatibility; target → source by its contrapositive under totality)
// until fixpoint.  A derived cycle proves inconsistency.  In the absence
// of denial constraints the result PO∞ equals the intersection of the
// completed orders over all consistent completions (Lemma 6.2), which
// makes CPS, COP and DCIP PTIME-decidable (Theorem 6.1); with denial
// constraints it is still a sound pre-propagation (every derived pair is
// certain), used to seed the SAT encoder (ablation option).

#ifndef CURRENCY_SRC_CORE_CHASE_H_
#define CURRENCY_SRC_CORE_CHASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"

namespace currency::core {

struct CopyBucketIndex;  // src/core/encoder.h

/// Result of the copy-order chase.
struct ChaseResult {
  /// False iff a cyclic order requirement was derived (Mod(S) = ∅
  /// regardless of denial constraints).
  bool consistent = true;
  /// certain_orders[i][a]: PO∞ for instance i, attribute a.  Meaningful
  /// only when `consistent`; equals ∩_{Dc ∈ Mod(S)} ≺c when S has no
  /// denial constraints (Lemma 6.2).
  std::vector<std::vector<PartialOrder>> certain_orders;
  /// Number of propagation passes until fixpoint (for the benchmarks).
  int passes = 0;
  /// Mapped pairs scanned across all propagation passes (the chase
  /// analogue of SolverStats propagation counters).
  int64_t edges_expanded = 0;
  /// Order pairs actually derived (successful TryAdds, including denial
  /// conclusions on the CertainOrderPrefix variant).
  int64_t derived_pairs = 0;
};

/// The copy-order chase restricted to one coupling component, in the
/// component's own coordinates.  For a chase-eligible component (no denial
/// constraint grounds on any of its entity groups) this is the complete
/// PO∞ of the component sub-specification: copy buckets never straddle
/// components and denial groundings are entity-group-local, so chasing a
/// component in isolation derives exactly the pairs the whole-spec chase
/// would derive inside it.
struct ComponentChase {
  /// False iff a cyclic order requirement was derived within the
  /// component (Mod(S) = ∅ for the whole specification).
  bool consistent = true;
  int passes = 0;
  int64_t edges_expanded = 0;
  int64_t derived_pairs = 0;

  /// One entity group of the component.  `orders[a]` is PO∞ for data
  /// attribute a over LOCAL indices into `members` (ascending TupleIds,
  /// the EntityGroups order); orders[0] is an empty placeholder so that
  /// attribute indices line up with the schema.
  struct Node {
    int inst = -1;
    Value eid;
    std::vector<TupleId> members;
    std::vector<PartialOrder> orders;
  };
  std::vector<Node> nodes;

  /// The node for (inst, eid), or nullptr if the component has none.
  const Node* FindNode(int inst, const Value& eid) const;

  /// True iff u ≺_attr v is certain, where u and v are TupleIds of
  /// instance `inst` within the entity group `eid`.  False when either
  /// tuple lies outside the group (cross-entity pairs are never certain).
  bool CertainLess(int inst, const Value& eid, AttrIndex attr, TupleId u,
                   TupleId v) const;
};

/// Runs the copy-order chase over the sub-specification induced by the
/// component whose entity groups are `nodes` ((instance, eid) pairs):
/// initial orders restricted to the groups, propagation along the copy
/// buckets both of whose endpoints lie in the component.  `copy_index`
/// as in ChaseCopyOrders.
Result<ComponentChase> ChaseComponentOrders(
    const Specification& spec,
    const std::vector<std::pair<int, Value>>& nodes,
    const CopyBucketIndex* copy_index = nullptr);

/// Merges a component chase's certain orders for instance `inst` into
/// `orders` (per-attribute partial orders over global TupleIds, sized for
/// the instance's relation).  Used to assemble instance-level PO∞ from
/// per-component fixpoints for the SP CCQA pipeline.
Status MergeComponentOrdersInto(const ComponentChase& chase, int inst,
                                std::vector<PartialOrder>* orders);

/// Runs the chase.  Fails (error Status) only on malformed specifications
/// (unresolvable copy signatures); an inconsistent-but-well-formed
/// specification yields consistent == false.
///
/// `copy_index` optionally supplies a prebuilt CopyBucketIndex for the
/// specification (the same one the encoder shares); when null the chase
/// buckets the copy mappings itself.  Read during set-up only, not
/// retained.
Result<ChaseResult> ChaseCopyOrders(const Specification& spec,
                                    const CopyBucketIndex* copy_index =
                                        nullptr);

/// Chase + denial-constraint Horn closure: additionally fires every
/// grounded denial constraint whose order premises are already certain,
/// adding its conclusion (or detecting inconsistency for pure denials).
/// Every derived pair holds in EVERY consistent completion (sound); the
/// closure is not complete in general — with denial constraints, deciding
/// certainty is coNP-hard (Theorem 3.4) — but it shrinks search spaces
/// dramatically (used to seed the SAT encoder and the brute-force oracle).
/// Without denial constraints it coincides with ChaseCopyOrders.
Result<ChaseResult> CertainOrderPrefix(const Specification& spec,
                                       const CopyBucketIndex* copy_index =
                                           nullptr);

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_CHASE_H_
