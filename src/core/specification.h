// Specification of data currency (Section 2): a collection of temporal
// instances, denial constraints per instance, and copy functions between
// instances.  This is the central input object of all seven decision
// problems (CPS, COP, DCIP, CCQA, CPP, ECP, BCP).

#ifndef CURRENCY_SRC_CORE_SPECIFICATION_H_
#define CURRENCY_SRC_CORE_SPECIFICATION_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/constraints/denial_constraint.h"
#include "src/copy/copy_function.h"
#include "src/core/temporal_instance.h"
#include "src/query/eval.h"

namespace currency::core {

/// A copy function together with the resolved instance indices it links.
struct CopyEdge {
  int source_instance = -1;  ///< data flows FROM this instance ...
  int target_instance = -1;  ///< ... INTO this instance
  copy::CopyFunction fn;
};

/// One in-place cell overwrite of a specification's data: tuple `tuple` of
/// instance `instance` gets `new_value` at attribute `attr`.  Attribute 0
/// is the EID, so an EID edit moves the tuple between entity groups —
/// the coupling-component split/merge case of the serving layer.
struct TupleEdit {
  int instance = -1;
  TupleId tuple = -1;
  AttrIndex attr = -1;
  Value new_value;

  /// Field-wise equality (the wire round-trip tests compare edit batches
  /// with this; see src/wire/spec.h).
  bool operator==(const TupleEdit& other) const {
    return instance == other.instance && tuple == other.tuple &&
           attr == other.attr && new_value == other.new_value;
  }
  bool operator!=(const TupleEdit& other) const { return !(*this == other); }
};

/// A specification S = ({D_t,i}, {Σ_i}, {ρ_(i,j)}).  Value-semantic: copies
/// are deep, which the currency-preservation solvers rely on when building
/// extensions Se.
class Specification {
 public:
  Specification() = default;

  /// Adds an instance; relation names must be unique within S.
  Status AddInstance(TemporalInstance instance);

  /// Adds a denial constraint; its relation must already be present.
  Status AddConstraint(constraints::DenialConstraint constraint);

  /// Parses and adds a denial constraint against the named relation's
  /// schema (see constraints/parser.h for the syntax).
  Status AddConstraintText(const std::string& text);

  /// Adds a copy function; both relations must be present, the signature
  /// must resolve, and the copying condition must hold on the data.
  Status AddCopyFunction(copy::CopyFunction fn);

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const TemporalInstance& instance(int i) const { return instances_[i]; }
  TemporalInstance* mutable_instance(int i) { return &instances_[i]; }

  /// Index of the instance whose relation is `name`.
  Result<int> InstanceIndex(const std::string& name) const;

  /// Constraints attached to instance `i`.
  const std::vector<constraints::DenialConstraint>& constraints_for(
      int i) const {
    return constraints_[i];
  }

  /// True iff any instance carries denial constraints (the tractability
  /// boundary of Section 6).
  bool HasDenialConstraints() const;

  const std::vector<CopyEdge>& copy_edges() const { return copy_edges_; }
  CopyEdge* mutable_copy_edge(int i) { return &copy_edges_[i]; }

  /// Appends to the target of `copy_edge_index` a fresh tuple for entity
  /// `target_eid` whose data attributes are copied from `source_tuple`,
  /// and maps it.  Requires the edge's signature to cover all target data
  /// attributes (Section 4's extendability condition).  Returns the new
  /// tuple's id.
  Result<TupleId> AppendCopiedTuple(int copy_edge_index, TupleId source_tuple,
                                    const Value& target_eid);

  /// Applies a batch of cell edits atomically: either every edit is
  /// applied or, on any validation failure, the specification is left
  /// exactly as before (rollback) and an error is returned.  Validated
  /// invariants:
  ///   * instance / tuple / attribute ranges;
  ///   * an EID edit must not strand initial currency-order pairs
  ///     (orders only relate same-entity tuples, Section 2), so it is
  ///     rejected when the tuple participates in any initial order;
  ///   * the copying condition t[A_i] = ρ(t)[B_i] of every copy function
  ///     touching an edited instance must still hold afterwards.
  /// Tuple ids, instance indices, constraints and copy mappings are all
  /// unchanged by construction, so solver results on the edited
  /// specification are comparable to a freshly constructed one — the
  /// serving layer's Mutate path builds on this.
  Status ApplyTupleEdits(const std::vector<TupleEdit>& edits);

  /// View of the embedded normal instances as a query::Database
  /// (borrowed pointers into this specification).
  query::Database EmbeddedDatabase() const;

  /// Total size of the specification (tuples across instances).
  int64_t TotalTuples() const;

 private:
  std::vector<TemporalInstance> instances_;
  std::map<std::string, int> index_;
  std::vector<std::vector<constraints::DenialConstraint>> constraints_;
  std::vector<CopyEdge> copy_edges_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_SPECIFICATION_H_
