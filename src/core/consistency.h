// CPS — the consistency problem for specifications (Section 3):
// given S, is Mod(S) non-empty?
//
// Complexity (Theorem 3.1): NP-complete in data complexity, Σp2-complete
// in combined complexity; PTIME without denial constraints (Theorem 6.1).
// The solver realizes the upper bound with CDCL search over the order
// encoding, and dispatches to the chase on denial-constraint-free inputs.

#ifndef CURRENCY_SRC_CORE_CONSISTENCY_H_
#define CURRENCY_SRC_CORE_CONSISTENCY_H_

#include <optional>

#include "src/common/result.h"
#include "src/core/completion.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/sat/portfolio.h"

namespace currency::exec {
class ThreadPool;
}  // namespace currency::exec

namespace currency::core {

/// Options for DecideConsistency.
struct CpsOptions {
  /// Use the PTIME chase when the specification has no denial constraints
  /// (Theorem 6.1).  Disable to force the SAT path (ablation).
  bool use_ptime_path_without_constraints = true;
  /// Always construct a witness completion (forces the SAT path even when
  /// the chase decides consistency).
  bool want_witness = false;
  /// Split the SAT path along the coupling graph (src/core/decompose.h):
  /// one small instance per component, solved smallest-first with an
  /// early exit on the first UNSAT component.  Disable to force one
  /// monolithic encoding (ablation / equivalence testing).
  bool use_decomposition = true;
  /// On the decomposed path, decide chase-eligible components (no denial
  /// grounding touches them) by the polynomial copy-order chase instead
  /// of building their SAT encoders; SAT remains the fallback for the
  /// constrained components of the same specification.  Ignored when
  /// `want_witness` forces full encoders.  Disable to force pure SAT
  /// (equivalence testing / ablation).
  bool use_chase_routing = true;
  /// Threads for the decomposed path (src/exec/thread_pool.h): components
  /// are solved concurrently with first-UNSAT cancellation.  Counts the
  /// calling thread; 1 (the default) runs strictly sequentially.  Answers
  /// and witnesses are bit-identical for every value.
  int num_threads = 1;
  /// Optional caller-owned pool for the decomposed path, reused across
  /// calls instead of spawning pool threads per invocation (the serving
  /// layer passes its session pool).  When set it overrides
  /// `num_threads`; not owned — it must outlive the call and must not be
  /// inside a concurrent ParallelFor region.
  exec::ThreadPool* pool = nullptr;
  /// Verdict-deterministic portfolio racing for dominant components (off
  /// by default): components with at least `portfolio.min_component_size`
  /// entity groups race diversified solvers on the pool, first verdict
  /// wins.  Verdict-only — ignored when `want_witness` (a raced primary
  /// may hold no model), so answers and witnesses stay bit-identical.
  sat::PortfolioOptions portfolio;
  Encoder::Options encoder;
};

/// Outcome of CPS.
struct CpsOutcome {
  bool consistent = false;
  /// A consistent completion, when `consistent` and the SAT path ran.
  std::optional<Completion> witness;
  /// True iff the PTIME chase decided the instance.
  bool used_ptime_path = false;
  /// Number of coupling components the decomposed SAT path saw (0 when
  /// the monolithic or chase path answered).
  int components = 0;
};

/// Decides whether Mod(S) is non-empty.
Result<CpsOutcome> DecideConsistency(const Specification& spec,
                                     const CpsOptions& options = {});

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_CONSISTENCY_H_
