// Entity-component decomposition of the SAT path.
//
// Every clause the order-literal encoder emits stays inside one entity
// group or links exactly two groups through a copy function: transitivity,
// initial-order units, grounded denial constraints and is-last selectors
// are per-(instance, entity), and a copy ≺-compatibility implication
// ord_src(s1,s2) → ord_tgt(t1,t2) couples the source pair's entity group
// with the target pair's.  The *coupling graph* therefore has one node per
// (instance, entity) group and one edge per copy-coupled or (in principle)
// constraint-coupled pair of groups; its connected components are
// independent sub-specifications whose models multiply:
//
//   Mod(S) ≅ Π_c Mod(S|_c)      (c ranges over coupling components)
//
// This is the locality the paper's decision problems already have — they
// quantify over completions of *per-entity* currency orders — made
// explicit.  The DecomposedEncoder below exploits it:
//   * CPS: S is consistent iff every component is; solve smallest-first
//     and short-circuit on the first UNSAT component.
//   * COP: a pair (u, v) is refuted inside the component owning u's
//     entity; other components only matter for the Mod(S) = ∅ vacuity.
//   * DCIP: determinism is checked per entity group against the group's
//     component encoder.
//   * CCQA: the distinct current instances of S are the cartesian product
//     of per-component current fragments; certain-membership checks run
//     on a merged encoder covering just the components a query touches.
//
// Equivalence with the monolithic encoder is property-tested against the
// brute-force oracle (tests/oracle_invariants_test.cc) and benchmarked in
// bench/bench_scale_decomposition.cc.

#ifndef CURRENCY_SRC_CORE_DECOMPOSE_H_
#define CURRENCY_SRC_CORE_DECOMPOSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/chase.h"
#include "src/core/completion.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/exec/thread_pool.h"

namespace currency::core {

/// A node of the coupling graph: one entity group of one instance.
struct EntityNode {
  int inst = -1;
  Value eid;
};

/// The partition of a specification's entity groups into independent
/// coupling components.  Value-semantic and immutable once built.
class Decomposition {
 public:
  /// An empty decomposition (no components); assign from Build().
  Decomposition() = default;

  /// Builds the coupling graph and its connected components.  Fails only
  /// on malformed specifications (unresolvable copy signatures).
  static Result<Decomposition> Build(const Specification& spec);

  int num_components() const { return static_cast<int>(components_.size()); }

  /// The nodes of component `c`.
  const std::vector<EntityNode>& component(int c) const {
    return components_[c];
  }

  /// Component owning (inst, eid), or -1 when the entity does not occur.
  int ComponentOf(int inst, const Value& eid) const;

  /// Components owning at least one entity of instance `inst` (sorted).
  const std::vector<int>& ComponentsOfInstance(int inst) const {
    return instance_components_[inst];
  }

  /// Sorted, deduplicated union of ComponentsOfInstance over `instances`.
  std::vector<int> ComponentsOfInstances(
      const std::vector<int>& instances) const;

  /// An EntityFilter admitting exactly the nodes of the given components.
  EntityFilter FilterFor(const std::vector<int>& components) const;

  /// Content fingerprint of component `c`: a 64-bit hash over every input
  /// a per-component encoder build reads — the member tuples (ids and
  /// values), the initial currency-order pairs among them, the coupling
  /// copy buckets (≥ 2 distinct sources; single-source buckets emit no
  /// clauses and no chase derivations, see the Build comment), and the
  /// owning instances' denial-constraint texts (groundings are a function
  /// of those texts and the member values).  Fingerprints are comparable
  /// across Decomposition rebuilds over a mutated specification: equal
  /// fingerprints mean identical encoding inputs (modulo 64-bit hash
  /// collisions), which is what lets the serving layer re-use component
  /// encoders and cached results across Mutate epochs and re-encode
  /// exactly the components an edit touched.
  uint64_t fingerprint(int c) const { return fingerprints_[c]; }

 private:
  int num_instances_ = 0;
  std::vector<std::vector<EntityNode>> components_;
  /// node_component_[i]: eid -> component id, per instance.
  std::vector<std::map<Value, int>> node_component_;
  std::vector<std::vector<int>> instance_components_;
  std::vector<uint64_t> fingerprints_;
};

/// One small SAT encoder per coupling component, sharing one specification
/// and one set of encoder options.  Component encoders are built lazily
/// (CPS may never reach them past the first UNSAT component) and cached;
/// tuple ids and instance indices remain the specification's own, so the
/// callers' queries need no translation.
///
/// Thread confinement: after Build returns, every shared member — the
/// specification (including each Relation's entity-group cache, warmed by
/// Decomposition::Build), the options, the Decomposition, the
/// CopyBucketIndex, the chase seed, and the per-component filters — is
/// read-only.  Each component's Encoder (and its sat::Solver) is mutable
/// state confined to whichever single task currently works on that
/// component, so ComponentEncoder may be called concurrently for
/// *distinct* components (each task builds into and solves its own
/// `encoders_[c]` slot), but never for the same component from two
/// threads.  SolveAll's parallel path enforces this by giving each task
/// exactly one component.
class DecomposedEncoder {
 public:
  static Result<std::unique_ptr<DecomposedEncoder>> Build(
      const Specification& spec, const Encoder::Options& options);

  const Decomposition& decomposition() const { return decomposition_; }
  int num_components() const { return decomposition_.num_components(); }

  /// The (cached) encoder of component `c`.
  Result<Encoder*> ComponentEncoder(int c);

  /// A fresh encoder covering exactly the union of `components` (callers
  /// own it; it is not cached).  Used by CCQA's certain-membership loop,
  /// which mutates its encoder with blocking clauses.
  Result<std::unique_ptr<Encoder>> BuildMergedEncoder(
      const std::vector<int>& components) const;

  /// Pass-through to Decomposition::fingerprint.
  uint64_t component_fingerprint(int c) const {
    return decomposition_.fingerprint(c);
  }

  /// Moves component `c`'s built encoder out of the cache (nullptr when
  /// the component was never built); the slot reverts to lazy.  The
  /// serving layer harvests encoders this way before rebuilding over a
  /// mutated specification.
  std::unique_ptr<Encoder> TakeComponentEncoder(int c);

  /// Installs an encoder previously taken from a component with an equal
  /// fingerprint of a prior build over the same specification object and
  /// the same options.  The fingerprint check is the caller's
  /// responsibility — adopting a mismatched encoder silently corrupts
  /// answers.  Fails when the slot is already occupied.
  Status AdoptComponentEncoder(int c, std::unique_ptr<Encoder> encoder);

  /// Solves every component not listed in `skip`, smallest encoding
  /// first, short-circuiting on the first UNSAT component.  Returns true
  /// iff all solved components are satisfiable (each solved encoder then
  /// holds a model).
  ///
  /// When `pool` is given and has more than one thread, components are
  /// solved concurrently (one task per component, claimed smallest-first)
  /// with cooperative first-UNSAT cancellation.  The answer — and, on a
  /// satisfiable specification, every per-component witness model — is
  /// bit-identical to the sequential path for every thread count: each
  /// component's encoder sees exactly the same build and the same single
  /// Solve call either way.
  Result<bool> SolveAll(const std::vector<int>& skip = {},
                        exec::ThreadPool* pool = nullptr);

  /// Merges the per-component witness models into one completion.
  /// Requires an immediately preceding SolveAll() == true.
  Result<Completion> ExtractCompletion() const;

 private:
  DecomposedEncoder() = default;

  const Specification* spec_ = nullptr;
  Encoder::Options options_;
  Decomposition decomposition_;
  /// Copy-bucket index shared by every component build (built once).
  CopyBucketIndex copy_index_;
  /// Chase result shared by every component build when the options ask
  /// for chase seeding (the chase runs over the whole specification).
  std::optional<ChaseResult> chase_seed_;
  /// Per-component filters (stable storage for lazily built encoders).
  std::vector<EntityFilter> filters_;
  std::vector<std::unique_ptr<Encoder>> encoders_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_DECOMPOSE_H_
