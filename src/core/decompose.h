// Entity-component decomposition of the SAT path.
//
// Every clause the order-literal encoder emits stays inside one entity
// group or links exactly two groups through a copy function: transitivity,
// initial-order units, grounded denial constraints and is-last selectors
// are per-(instance, entity), and a copy ≺-compatibility implication
// ord_src(s1,s2) → ord_tgt(t1,t2) couples the source pair's entity group
// with the target pair's.  The *coupling graph* therefore has one node per
// (instance, entity) group and one edge per copy-coupled or (in principle)
// constraint-coupled pair of groups; its connected components are
// independent sub-specifications whose models multiply:
//
//   Mod(S) ≅ Π_c Mod(S|_c)      (c ranges over coupling components)
//
// This is the locality the paper's decision problems already have — they
// quantify over completions of *per-entity* currency orders — made
// explicit.  The DecomposedEncoder below exploits it:
//   * CPS: S is consistent iff every component is; solve smallest-first
//     and short-circuit on the first UNSAT component.
//   * COP: a pair (u, v) is refuted inside the component owning u's
//     entity; other components only matter for the Mod(S) = ∅ vacuity.
//   * DCIP: determinism is checked per entity group against the group's
//     component encoder.
//   * CCQA: the distinct current instances of S are the cartesian product
//     of per-component current fragments; certain-membership checks run
//     on a merged encoder covering just the components a query touches.
//
// Equivalence with the monolithic encoder is property-tested against the
// brute-force oracle (tests/oracle_invariants_test.cc) and benchmarked in
// bench/bench_scale_decomposition.cc.

#ifndef CURRENCY_SRC_CORE_DECOMPOSE_H_
#define CURRENCY_SRC_CORE_DECOMPOSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/chase.h"
#include "src/core/completion.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/exec/thread_pool.h"
#include "src/sat/portfolio.h"

namespace currency::core {

/// A node of the coupling graph: one entity group of one instance.
struct EntityNode {
  int inst = -1;
  Value eid;
};

/// The partition of a specification's entity groups into independent
/// coupling components.  Value-semantic and immutable once built.
class Decomposition {
 public:
  /// An empty decomposition (no components); assign from Build().
  Decomposition() = default;

  /// Builds the coupling graph and its connected components.  Fails only
  /// on malformed specifications (unresolvable copy signatures).
  static Result<Decomposition> Build(const Specification& spec);

  int num_components() const { return static_cast<int>(components_.size()); }

  /// The nodes of component `c`.
  const std::vector<EntityNode>& component(int c) const {
    return components_[c];
  }

  /// Component owning (inst, eid), or -1 when the entity does not occur.
  int ComponentOf(int inst, const Value& eid) const;

  /// Components owning at least one entity of instance `inst` (sorted).
  const std::vector<int>& ComponentsOfInstance(int inst) const {
    return instance_components_[inst];
  }

  /// Sorted, deduplicated union of ComponentsOfInstance over `instances`.
  std::vector<int> ComponentsOfInstances(
      const std::vector<int>& instances) const;

  /// An EntityFilter admitting exactly the nodes of the given components.
  EntityFilter FilterFor(const std::vector<int>& components) const;

  /// Content fingerprint of component `c`: a 64-bit hash over every input
  /// a per-component encoder build reads — the member tuples (ids and
  /// values), the initial currency-order pairs among them, the coupling
  /// copy buckets (≥ 2 distinct sources; single-source buckets emit no
  /// clauses and no chase derivations, see the Build comment), and the
  /// texts of exactly the denial constraints with at least one grounding
  /// on a member group (a grounding set is a function of the constraint
  /// text and the member values, which are hashed too; zero-grounding
  /// constraints contribute nothing to any path and are excluded so that
  /// adding one invalidates nothing).  Fingerprints are comparable
  /// across Decomposition rebuilds over a mutated specification: equal
  /// fingerprints mean identical encoding inputs (modulo 64-bit hash
  /// collisions), which is what lets the serving layer re-use component
  /// encoders, cached results and chase fixpoints across Mutate epochs
  /// and re-encode exactly the components an edit touched.
  uint64_t fingerprint(int c) const { return fingerprints_[c]; }

  /// True iff no denial constraint has any grounding on any entity group
  /// of component `c`.  The component's sub-specification is then
  /// effectively constraint-free, so the copy-order chase decides its
  /// consistency, certain orders and determinism in PTIME (Theorem 6.1 /
  /// Lemma 6.2 applied to S|_c) and the SAT encoder need not be built.
  bool chase_eligible(int c) const { return chase_eligible_[c] != 0; }

  /// True iff `c` is chase-eligible AND consists of a single entity group
  /// touched by no coupling copy bucket.  Its data attributes are then
  /// mutually independent, so the component's current-instance fragments
  /// are the cartesian product of per-attribute certain-sink values —
  /// enumerable straight off the chase fixpoint.  (Multi-group or
  /// copy-coupled components correlate attributes across tuples and fall
  /// back to SAT model enumeration even when chase-eligible.)
  bool chase_enumerable(int c) const { return chase_enumerable_[c] != 0; }

 private:
  int num_instances_ = 0;
  std::vector<std::vector<EntityNode>> components_;
  /// node_component_[i]: eid -> component id, per instance.
  std::vector<std::map<Value, int>> node_component_;
  std::vector<std::vector<int>> instance_components_;
  std::vector<uint64_t> fingerprints_;
  std::vector<char> chase_eligible_;
  std::vector<char> chase_enumerable_;
};

/// One small SAT encoder per coupling component, sharing one specification
/// and one set of encoder options.  Component encoders are built lazily
/// (CPS may never reach them past the first UNSAT component) and cached;
/// tuple ids and instance indices remain the specification's own, so the
/// callers' queries need no translation.
///
/// Thread confinement: after Build returns, every shared member — the
/// specification (including each Relation's entity-group cache, warmed by
/// Decomposition::Build), the options, the Decomposition, the
/// CopyBucketIndex, the chase seed, and the per-component filters — is
/// read-only.  Each component's Encoder (and its sat::Solver) is mutable
/// state confined to whichever single task currently works on that
/// component, so ComponentEncoder may be called concurrently for
/// *distinct* components (each task builds into and solves its own
/// `encoders_[c]` slot), but never for the same component from two
/// threads.  SolveAll's parallel path enforces this by giving each task
/// exactly one component.
class DecomposedEncoder {
 public:
  /// `use_chase_routing` routes chase-eligible components through the
  /// polynomial copy-order chase instead of SAT: SolveAll answers their
  /// consistency from ComponentChaseFixpoint and never builds their
  /// encoders.  Off by default so direct callers keep the pure-SAT
  /// semantics (ExtractCompletion in particular needs every encoder
  /// built); the decision procedures and the serving layer opt in via
  /// their own use_chase_routing options.
  static Result<std::unique_ptr<DecomposedEncoder>> Build(
      const Specification& spec, const Encoder::Options& options,
      bool use_chase_routing = false);

  const Decomposition& decomposition() const { return decomposition_; }
  int num_components() const { return decomposition_.num_components(); }

  bool chase_routing() const { return use_chase_routing_; }
  /// True iff routing is on and component `c` is chase-eligible: callers
  /// must answer `c` from ComponentChaseFixpoint, not ComponentEncoder.
  bool chase_routed(int c) const {
    return use_chase_routing_ && decomposition_.chase_eligible(c);
  }
  /// True iff routing is on and `c`'s current-instance fragments may be
  /// enumerated straight off the chase (Decomposition::chase_enumerable).
  bool chase_routed_enumerable(int c) const {
    return use_chase_routing_ && decomposition_.chase_enumerable(c);
  }

  /// The (cached) chase fixpoint of the chase-eligible component `c`.
  /// Lazily computed; same thread-confinement contract as
  /// ComponentEncoder (concurrent calls must target distinct components
  /// unless the fixpoint is already cached, after which the result is
  /// read-only).  InvalidArgument for ineligible components.
  Result<const ComponentChase*> ComponentChaseFixpoint(int c);

  /// Computes component `c`'s chase fixpoint WITHOUT touching the lazy
  /// cache slot: reads only the post-Build read-only state (spec,
  /// decomposition, copy index), so it is safe to call concurrently from
  /// any number of threads — even for the same component.  The serving
  /// layer's epoch snapshots (serve/epoch.h) manage their own slots under
  /// per-component locks and use this const builder to fill them.
  /// InvalidArgument for ineligible components.
  Result<ComponentChase> BuildComponentChase(int c) const;

  /// Moves component `c`'s cached chase fixpoint out (nullptr when never
  /// computed); the slot reverts to lazy.  Mirrors TakeComponentEncoder
  /// for the serving layer's cross-epoch harvest.
  std::unique_ptr<ComponentChase> TakeComponentChase(int c);

  /// Installs a chase fixpoint previously taken from a component with an
  /// equal fingerprint (the caller's responsibility, as with
  /// AdoptComponentEncoder).  Fails when the slot is occupied or the
  /// component is not chase-eligible.
  Status AdoptComponentChase(int c, std::unique_ptr<ComponentChase> chase);

  /// The (cached) encoder of component `c`.
  Result<Encoder*> ComponentEncoder(int c);

  /// Builds a fresh encoder for exactly component `c` WITHOUT touching the
  /// lazy cache slot (the caller owns it).  Like BuildComponentChase this
  /// reads only post-Build read-only state, so concurrent calls are safe
  /// for any component mix; the epoch layer uses it to fill its own
  /// per-component slots.
  Result<std::unique_ptr<Encoder>> BuildComponentEncoder(int c) const {
    return BuildComponentEncoder(c, options_.solver);
  }

  /// Same, with solver-diversification knobs overriding the shared
  /// options — the portfolio layer's rival builds.  The CNF a component
  /// encoder emits is a function of the read-only inputs only, so rival
  /// encoders carry exactly the same formula as the primary.
  Result<std::unique_ptr<Encoder>> BuildComponentEncoder(
      int c, const sat::Solver::Options& solver_options) const;

  /// True iff `c` would be routed through the portfolio: the options are
  /// given and enabled, the pool can actually race (> 1 thread), the
  /// component is not chase-routed, and its member count reaches
  /// min_component_size.
  bool PortfolioEligible(int c, const sat::PortfolioOptions* portfolio,
                         const exec::ThreadPool* pool) const;

  /// The (cached) verdict-race context fronting component `c`'s cached
  /// encoder solver.  Rival encoders are spawned lazily inside the
  /// returned Portfolio and owned by this DecomposedEncoder.  Same
  /// slot-confinement contract as ComponentEncoder; callers must pass
  /// the same pool on every call for a given component.  After a race
  /// the primary encoder may hold NO model even on a kSat verdict —
  /// callers needing a witness re-Solve() on ComponentEncoder(c).
  Result<sat::Portfolio*> ComponentPortfolio(
      int c, const sat::PortfolioOptions& portfolio, exec::ThreadPool* pool);

  /// A fresh encoder covering exactly the union of `components` (callers
  /// own it; it is not cached).  Used by CCQA's certain-membership loop,
  /// which mutates its encoder with blocking clauses.
  Result<std::unique_ptr<Encoder>> BuildMergedEncoder(
      const std::vector<int>& components) const;

  /// Pass-through to Decomposition::fingerprint.
  uint64_t component_fingerprint(int c) const {
    return decomposition_.fingerprint(c);
  }

  /// Moves component `c`'s built encoder out of the cache (nullptr when
  /// the component was never built); the slot reverts to lazy.  The
  /// serving layer harvests encoders this way before rebuilding over a
  /// mutated specification.
  std::unique_ptr<Encoder> TakeComponentEncoder(int c);

  /// Installs an encoder previously taken from a component with an equal
  /// fingerprint of a prior build over the same specification object and
  /// the same options.  The fingerprint check is the caller's
  /// responsibility — adopting a mismatched encoder silently corrupts
  /// answers.  Fails when the slot is already occupied.
  Status AdoptComponentEncoder(int c, std::unique_ptr<Encoder> encoder);

  /// Solves every component not listed in `skip`, smallest encoding
  /// first, short-circuiting on the first UNSAT component.  Returns true
  /// iff all solved components are satisfiable (each solved encoder then
  /// holds a model).  With chase routing on, chase-eligible components
  /// are decided first from their (cheap, cached) chase fixpoints and
  /// never reach SAT; a chase-inconsistent component short-circuits the
  /// whole call.
  ///
  /// When `pool` is given and has more than one thread, components are
  /// solved concurrently (one task per component, claimed smallest-first)
  /// with cooperative first-UNSAT cancellation.  The answer — and, on a
  /// satisfiable specification, every per-component witness model — is
  /// bit-identical to the sequential path for every thread count: each
  /// component's encoder sees exactly the same build and the same single
  /// Solve call either way.
  ///
  /// When `portfolio` is given and enabled, PortfolioEligible (dominant)
  /// components are instead raced through ComponentPortfolio — one race
  /// at a time, from the calling thread, AFTER the regular components
  /// (ParallelFor regions must not nest, and the small components are
  /// the cheap short-circuit candidates).  Verdicts are race-independent
  /// so the boolean answer is unchanged, but a raced component's encoder
  /// may hold no model afterwards: callers that extract witnesses must
  /// not pass `portfolio` (consistency.cc routes want_witness queries to
  /// the single-solver path for exactly this reason).
  Result<bool> SolveAll(const std::vector<int>& skip = {},
                        exec::ThreadPool* pool = nullptr,
                        const sat::PortfolioOptions* portfolio = nullptr);

  /// Merges the per-component witness models into one completion.
  /// Requires an immediately preceding SolveAll() == true.
  Result<Completion> ExtractCompletion() const;

 private:
  DecomposedEncoder() = default;

  const Specification* spec_ = nullptr;
  Encoder::Options options_;
  Decomposition decomposition_;
  /// Copy-bucket index shared by every component build (built once).
  CopyBucketIndex copy_index_;
  /// Chase result shared by every component build when the options ask
  /// for chase seeding (the chase runs over the whole specification).
  std::optional<ChaseResult> chase_seed_;
  /// Per-component filters (stable storage for lazily built encoders).
  std::vector<EntityFilter> filters_;
  std::vector<std::unique_ptr<Encoder>> encoders_;
  bool use_chase_routing_ = false;
  /// Lazily computed per-component chase fixpoints (eligible components
  /// only; same slot confinement as encoders_).
  std::vector<std::unique_ptr<ComponentChase>> chases_;
  /// Lazily created per-component verdict races: the Portfolio plus the
  /// rival encoders it spawned (their solvers are borrowed by the
  /// Portfolio, so the encoders must live exactly as long as it does).
  struct PortfolioSlot {
    std::vector<std::unique_ptr<Encoder>> rivals;
    std::unique_ptr<sat::Portfolio> portfolio;
  };
  std::vector<std::unique_ptr<PortfolioSlot>> portfolios_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_DECOMPOSE_H_
