// Order-literal SAT encoding of consistent completions.
//
// A completion chooses a total order per (instance, attribute, entity
// group).  We introduce one Boolean variable per canonical same-entity
// tuple pair (u < v): true means u ≺ v, false means v ≺ u — totality and
// antisymmetry are built into the representation.  Clauses:
//   * transitivity over every ordered triple of an entity group,
//   * unit clauses for the initial partial orders,
//   * copy ≺-compatibility implications ord_src(s1,s2) → ord_tgt(t1,t2),
//   * grounded denial constraints (premise literals → conclusion literal),
//   * optional "is-last" selector variables L(u) ⇔ ⋀_{v≠u} ord(v,u), used
//     by CCQA/DCIP to project models onto distinct current instances.
//
// Models of the encoding are exactly the consistent completions of the
// specification (validated against the brute-force oracle in tests), so
// CPS = SAT, COP = entailment checks, DCIP/CCQA = projected enumeration —
// the CDCL solver plays the NP oracle of the paper's upper-bound proofs
// (Theorems 3.1, 3.4, 3.5).

#ifndef CURRENCY_SRC_CORE_ENCODER_H_
#define CURRENCY_SRC_CORE_ENCODER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/result.h"
#include "src/core/completion.h"
#include "src/core/specification.h"
#include "src/sat/solver.h"

namespace currency::core {

struct ChaseResult;

/// A per-instance whitelist of entity groups.  The decomposition layer
/// (src/core/decompose.h) passes one of these per coupling-graph component
/// to carve a small per-component SAT instance out of a specification.
struct EntityFilter {
  /// allowed[i]: entities of instance i to keep.  Instances beyond the
  /// vector's size keep nothing.
  std::vector<std::set<Value>> allowed;

  bool Contains(int inst, const Value& eid) const {
    return inst >= 0 && inst < static_cast<int>(allowed.size()) &&
           allowed[inst].count(eid) > 0;
  }
};

/// Copy-function mappings bucketed by entity pair: for one copy edge,
/// buckets[target_eid][source_eid] lists the mapped (target, source)
/// tuple pairs.  ≺-compatibility clauses only arise inside a bucket, so
/// encoding walks buckets instead of the |ρ|² mapping square — and a
/// filtered encoder walks only its own target entities.
using CopyBuckets =
    std::map<Value, std::map<Value, std::vector<std::pair<TupleId, TupleId>>>>;

/// Bucket indexes for every copy edge of a specification, in
/// spec.copy_edges() order.  The decomposition layer builds this once and
/// shares it across all per-component encoder builds.
struct CopyBucketIndex {
  std::vector<CopyBuckets> per_edge;

  static CopyBucketIndex Build(const Specification& spec);
};

/// Builds and owns the SAT encoding of a specification.
class Encoder {
 public:
  struct Options {
    /// Ground denial constraints into clauses (disable only to measure
    /// their cost; solvers require it for correctness).
    bool ground_denial_constraints = true;
    /// Seed the solver with the chase's certain orders as unit clauses
    /// (sound strengthening; ablation knob for bench_ablation).
    bool seed_with_chase = false;
    /// Create the is-last selector variables (needed by CCQA and DCIP).
    bool define_is_last = true;
    /// When set, encode only the listed entity groups.  The filter must be
    /// closed under copy coupling (Build fails otherwise); the pointed-to
    /// filter is copied at Build time and not retained.
    const EntityFilter* restrict_to = nullptr;
    /// Optional shared copy-bucket index (see CopyBucketIndex); when null
    /// the encoder builds its own.  Read only during Build, not retained.
    const CopyBucketIndex* copy_index = nullptr;
    /// Optional precomputed chase result for seed_with_chase; when null
    /// the encoder runs the (whole-specification) chase itself.  The
    /// decomposition layer computes it once and shares it across all
    /// component builds.  Read only during Build, not retained.
    const ChaseResult* chase_seed = nullptr;
    /// Search-diversification knobs for the underlying CDCL solver.  The
    /// defaults reproduce the undiversified search bit-for-bit; the
    /// portfolio layer (src/sat/portfolio.h) builds rival encoders over
    /// the same component with different knobs.
    sat::Solver::Options solver;
  };

  /// Builds the encoding.  Fails only on malformed specifications; an
  /// encoding that is already unsatisfiable at level 0 builds fine (the
  /// solver simply reports UNSAT).
  static Result<std::unique_ptr<Encoder>> Build(const Specification& spec,
                                                const Options& options);
  /// Builds with default options.
  static Result<std::unique_ptr<Encoder>> Build(const Specification& spec);

  /// The underlying solver (add clauses / solve / enumerate through it).
  sat::Solver& solver() { return *solver_; }

  /// True iff tuples u and v of instance `inst` share an entity (and are
  /// distinct), i.e. an order variable exists for them.
  bool HasPairVar(int inst, TupleId u, TupleId v) const;

  /// Literal asserting "u ≺_attr v" (requires HasPairVar(inst, u, v)).
  sat::Lit OrdLit(int inst, AttrIndex attr, TupleId u, TupleId v) const;

  /// Selector variable "u is the most current tuple of its entity for
  /// `attr`" (requires options.define_is_last).
  sat::Var IsLastVar(int inst, AttrIndex attr, TupleId u) const;

  /// A cell of the current instance: one (instance, attribute, entity)
  /// triple, with one Boolean per distinct candidate value ("the current
  /// value of this cell is values[k]" ⇔ value_vars[k]).  Distinct tuples
  /// carrying equal values collapse into one candidate, so projections on
  /// cell variables enumerate distinct current instances *by value*.
  struct Cell {
    int inst;
    AttrIndex attr;
    Value eid;
    std::vector<Value> values;
    std::vector<sat::Var> value_vars;
  };

  /// All cells (requires options.define_is_last).
  const std::vector<Cell>& cells() const { return cells_; }

  /// Cell-value variables of the given instances, in layout order, for
  /// projected model enumeration (pass all instances for full projection).
  std::vector<sat::Var> CellProjection(const std::vector<int>& instances) const;

  /// The literal "current value of cell (inst, attr, eid) is v".
  /// Fails if the entity or value does not occur.
  Result<sat::Lit> CellValueLit(int inst, AttrIndex attr, const Value& eid,
                                const Value& v) const;

  /// Decodes the solver's current model into current instances, one
  /// Relation per instance (valid right after a kSat Solve call).  On a
  /// filtered encoder, only the filter's entities appear in the output
  /// (the relations of untouched instances may be partial or empty).
  Result<std::vector<Relation>> DecodeCurrentInstances() const;

  /// Extracts the completion from the solver's current model (valid right
  /// after a kSat Solve call).
  Completion ExtractCompletion() const;

  /// Number of order variables (for the benchmarks).
  int num_order_vars() const { return num_order_vars_; }

  /// Repoints the encoder at `spec`, which must have the same shape as the
  /// specification it was built from: same instances, schemas, tuple ids,
  /// and entity groups (value edits only).  The retained specification is
  /// read only by DecodeCurrentInstances/ExtractCompletion, and those
  /// consult shape, not values — so an encoder harvested across epochs
  /// (serve/epoch.h) stays valid after rebinding to the new epoch's
  /// deep-copied specification.
  void RebindSpec(const Specification& spec) { spec_ = &spec; }

 private:
  Encoder() = default;

  Status BuildImpl(const Specification& spec, const Options& options);

  const Specification* spec_ = nullptr;
  std::unique_ptr<sat::Solver> solver_;
  /// Copy of options.restrict_to (when given): the encoding covers only
  /// these entity groups.
  std::optional<EntityFilter> filter_;
  /// The entity groups this encoder covers, per instance — the filter's
  /// groups, or all of them.  Build and decode iterate this instead of
  /// the relations, so a component encoder costs O(its own content)
  /// rather than O(specification).
  std::vector<std::vector<std::pair<Value, std::vector<TupleId>>>>
      active_groups_;
  /// pair_var_[inst][key(u,v)] with u < v canonical.
  std::vector<std::map<std::pair<TupleId, TupleId>, int>> pair_base_;
  /// Var id = base + (attr - 1); one var per data attribute per pair.
  int num_order_vars_ = 0;
  /// is_last_var_[inst][attr][tuple]; -1 when undefined.
  std::vector<std::vector<std::vector<sat::Var>>> is_last_var_;
  std::vector<Cell> cells_;
  /// cell_index_[inst] maps (attr, eid) -> index into cells_.
  std::vector<std::map<std::pair<AttrIndex, Value>, int>> cell_index_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_ENCODER_H_
