// Order-literal SAT encoding of consistent completions.
//
// A completion chooses a total order per (instance, attribute, entity
// group).  We introduce one Boolean variable per canonical same-entity
// tuple pair (u < v): true means u ≺ v, false means v ≺ u — totality and
// antisymmetry are built into the representation.  Clauses:
//   * transitivity over every ordered triple of an entity group,
//   * unit clauses for the initial partial orders,
//   * copy ≺-compatibility implications ord_src(s1,s2) → ord_tgt(t1,t2),
//   * grounded denial constraints (premise literals → conclusion literal),
//   * optional "is-last" selector variables L(u) ⇔ ⋀_{v≠u} ord(v,u), used
//     by CCQA/DCIP to project models onto distinct current instances.
//
// Models of the encoding are exactly the consistent completions of the
// specification (validated against the brute-force oracle in tests), so
// CPS = SAT, COP = entailment checks, DCIP/CCQA = projected enumeration —
// the CDCL solver plays the NP oracle of the paper's upper-bound proofs
// (Theorems 3.1, 3.4, 3.5).

#ifndef CURRENCY_SRC_CORE_ENCODER_H_
#define CURRENCY_SRC_CORE_ENCODER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/core/completion.h"
#include "src/core/specification.h"
#include "src/sat/solver.h"

namespace currency::core {

/// Builds and owns the SAT encoding of a specification.
class Encoder {
 public:
  struct Options {
    /// Ground denial constraints into clauses (disable only to measure
    /// their cost; solvers require it for correctness).
    bool ground_denial_constraints = true;
    /// Seed the solver with the chase's certain orders as unit clauses
    /// (sound strengthening; ablation knob for bench_ablation).
    bool seed_with_chase = false;
    /// Create the is-last selector variables (needed by CCQA and DCIP).
    bool define_is_last = true;
  };

  /// Builds the encoding.  Fails only on malformed specifications; an
  /// encoding that is already unsatisfiable at level 0 builds fine (the
  /// solver simply reports UNSAT).
  static Result<std::unique_ptr<Encoder>> Build(const Specification& spec,
                                                const Options& options);
  /// Builds with default options.
  static Result<std::unique_ptr<Encoder>> Build(const Specification& spec);

  /// The underlying solver (add clauses / solve / enumerate through it).
  sat::Solver& solver() { return *solver_; }

  /// True iff tuples u and v of instance `inst` share an entity (and are
  /// distinct), i.e. an order variable exists for them.
  bool HasPairVar(int inst, TupleId u, TupleId v) const;

  /// Literal asserting "u ≺_attr v" (requires HasPairVar(inst, u, v)).
  sat::Lit OrdLit(int inst, AttrIndex attr, TupleId u, TupleId v) const;

  /// Selector variable "u is the most current tuple of its entity for
  /// `attr`" (requires options.define_is_last).
  sat::Var IsLastVar(int inst, AttrIndex attr, TupleId u) const;

  /// A cell of the current instance: one (instance, attribute, entity)
  /// triple, with one Boolean per distinct candidate value ("the current
  /// value of this cell is values[k]" ⇔ value_vars[k]).  Distinct tuples
  /// carrying equal values collapse into one candidate, so projections on
  /// cell variables enumerate distinct current instances *by value*.
  struct Cell {
    int inst;
    AttrIndex attr;
    Value eid;
    std::vector<Value> values;
    std::vector<sat::Var> value_vars;
  };

  /// All cells (requires options.define_is_last).
  const std::vector<Cell>& cells() const { return cells_; }

  /// Cell-value variables of the given instances, in layout order, for
  /// projected model enumeration (pass all instances for full projection).
  std::vector<sat::Var> CellProjection(const std::vector<int>& instances) const;

  /// The literal "current value of cell (inst, attr, eid) is v".
  /// Fails if the entity or value does not occur.
  Result<sat::Lit> CellValueLit(int inst, AttrIndex attr, const Value& eid,
                                const Value& v) const;

  /// Decodes the solver's current model into current instances, one
  /// Relation per instance (valid right after a kSat Solve call).
  Result<std::vector<Relation>> DecodeCurrentInstances() const;

  /// Extracts the completion from the solver's current model (valid right
  /// after a kSat Solve call).
  Completion ExtractCompletion() const;

  /// Number of order variables (for the benchmarks).
  int num_order_vars() const { return num_order_vars_; }

 private:
  Encoder() = default;

  Status BuildImpl(const Specification& spec, const Options& options);

  const Specification* spec_ = nullptr;
  std::unique_ptr<sat::Solver> solver_;
  /// pair_var_[inst][key(u,v)] with u < v canonical.
  std::vector<std::map<std::pair<TupleId, TupleId>, int>> pair_base_;
  /// Var id = base + (attr - 1); one var per data attribute per pair.
  int num_order_vars_ = 0;
  /// is_last_var_[inst][attr][tuple]; -1 when undefined.
  std::vector<std::vector<std::vector<sat::Var>>> is_last_var_;
  std::vector<Cell> cells_;
  /// cell_index_[inst] maps (attr, eid) -> index into cells_.
  std::vector<std::map<std::pair<AttrIndex, Value>, int>> cell_index_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_ENCODER_H_
