#include "src/core/ccqa.h"

#include <algorithm>

#include "src/core/sp_ccqa.h"
#include "src/sat/model_enumerator.h"

namespace currency::core {

namespace {

/// Resolves the instance indices of the relations a query mentions.
Result<std::vector<int>> QueryInstances(const Specification& spec,
                                        const query::Query& q) {
  std::vector<int> out;
  for (const std::string& name : q.body->Relations()) {
    ASSIGN_OR_RETURN(int i, spec.InstanceIndex(name));
    out.push_back(i);
  }
  return out;
}

/// Builds the query-visible database view from decoded current instances.
query::Database RestrictTo(const Specification& spec,
                           const std::vector<int>& instances,
                           const std::vector<Relation>& lst) {
  query::Database db;
  for (int i : instances) db[spec.instance(i).name()] = &lst[i];
  return db;
}

/// Blocking clause from a witness derivation: "some cell a derivation row
/// read takes a different current value".  Falls back to blocking the full
/// current-value profile of the query's relations when no support is
/// available (general FO bodies).
Result<std::vector<sat::Lit>> BlockingClause(
    const Encoder& encoder, const Specification& spec,
    const std::vector<int>& instances, const std::vector<Relation>& lst,
    const std::vector<query::SupportRow>* support) {
  std::vector<sat::Lit> clause;
  auto add_row = [&](int inst, const Relation& rel, int row) -> Status {
    const Tuple& t = rel.tuple(row);
    for (AttrIndex a = 1; a < rel.schema().arity(); ++a) {
      ASSIGN_OR_RETURN(sat::Lit lit,
                       encoder.CellValueLit(inst, a, t.eid(), t.at(a)));
      clause.push_back(sat::Negate(lit));
    }
    return Status::OK();
  };
  if (support != nullptr) {
    for (const query::SupportRow& row : *support) {
      ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(row.relation));
      RETURN_IF_ERROR(add_row(inst, lst[inst], row.row));
    }
  } else {
    for (int inst : instances) {
      const Relation& rel = lst[inst];
      for (int row = 0; row < rel.size(); ++row) {
        RETURN_IF_ERROR(add_row(inst, rel, row));
      }
    }
  }
  // Deduplicate literals (rows may overlap).
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  return clause;
}

/// Conflict-driven certain-membership check: searches for a consistent
/// completion whose current instance does NOT answer `t`, blocking after
/// each failed attempt only the cells the witnessed derivation read.
/// Terminates because every iteration excludes at least the current
/// projected model; sound and complete per the argument in eval.h.
Result<bool> CheckCertainMember(const Specification& spec,
                                const query::Query& q, const Tuple& t,
                                const std::vector<int>& instances,
                                const CcqaOptions& options) {
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  int64_t iterations = 0;
  while (encoder->solver().Solve() == sat::SolveResult::kSat) {
    if (++iterations > options.max_current_instances) {
      return Status::ResourceExhausted(
          "certain-membership search exceeded the current-instance budget");
    }
    ASSIGN_OR_RETURN(std::vector<Relation> lst,
                     encoder->DecodeCurrentInstances());
    query::Database db = RestrictTo(spec, instances, lst);
    auto with_support = query::EvalQueryWithSupport(q, db);
    const std::vector<query::SupportRow>* support = nullptr;
    if (with_support.ok()) {
      auto it = with_support->find(t);
      if (it == with_support->end()) return false;  // witness found
      support = &it->second;
    } else if (with_support.status().code() == StatusCode::kUnsupported) {
      ASSIGN_OR_RETURN(std::set<Tuple> answers, query::EvalQuery(q, db));
      if (!answers.count(t)) return false;  // witness found
    } else {
      return with_support.status();
    }
    ASSIGN_OR_RETURN(
        std::vector<sat::Lit> clause,
        BlockingClause(*encoder, spec, instances, lst, support));
    if (!encoder->solver().AddClause(std::move(clause))) break;
  }
  return true;  // every completion answers t
}

}  // namespace

Result<int64_t> ForEachCurrentInstance(
    const Specification& spec, const CcqaOptions& options,
    const std::function<bool(const query::Database&)>& visit) {
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  std::vector<int> all;
  for (int i = 0; i < spec.num_instances(); ++i) all.push_back(i);
  std::vector<sat::Var> projection = encoder->CellProjection(all);
  Status inner = Status::OK();
  auto result = sat::EnumerateProjectedModels(
      &encoder->solver(), projection, options.max_current_instances,
      [&](const std::vector<bool>&) {
        auto decoded = encoder->DecodeCurrentInstances();
        if (!decoded.ok()) {
          inner = decoded.status();
          return false;
        }
        query::Database db;
        for (int i = 0; i < spec.num_instances(); ++i) {
          db[spec.instance(i).name()] = &(*decoded)[i];
        }
        return visit(db);
      });
  RETURN_IF_ERROR(inner);
  return result;
}

Result<std::set<Tuple>> CertainCurrentAnswers(const Specification& spec,
                                              const query::Query& q,
                                              const CcqaOptions& options) {
  if (options.use_sp_fast_path && !spec.HasDenialConstraints() &&
      query::IsSpQuery(q)) {
    return SpCertainCurrentAnswers(spec, q);
  }
  ASSIGN_OR_RETURN(std::vector<int> instances, QueryInstances(spec, q));
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
    return Status::Inconsistent(
        "Mod(S) is empty: every tuple is vacuously a certain answer");
  }
  // Candidates: answers in one current instance (certain ⊆ each Q(LST)).
  ASSIGN_OR_RETURN(std::vector<Relation> lst,
                   encoder->DecodeCurrentInstances());
  query::Database db = RestrictTo(spec, instances, lst);
  ASSIGN_OR_RETURN(std::set<Tuple> candidates, query::EvalQuery(q, db));
  std::set<Tuple> certain;
  for (const Tuple& t : candidates) {
    ASSIGN_OR_RETURN(bool keep,
                     CheckCertainMember(spec, q, t, instances, options));
    if (keep) certain.insert(t);
  }
  return certain;
}

Result<bool> IsCertainCurrentAnswer(const Specification& spec,
                                    const query::Query& q, const Tuple& t,
                                    const CcqaOptions& options) {
  if (static_cast<size_t>(t.arity()) != q.head.size()) {
    return Status::InvalidArgument(
        "candidate tuple arity does not match query head");
  }
  if (options.use_sp_fast_path && !spec.HasDenialConstraints() &&
      query::IsSpQuery(q)) {
    auto answers = SpCertainCurrentAnswers(spec, q);
    if (!answers.ok() && answers.status().code() == StatusCode::kInconsistent) {
      return true;  // vacuous
    }
    RETURN_IF_ERROR(answers.status());
    return answers->count(t) > 0;
  }
  ASSIGN_OR_RETURN(std::vector<int> instances, QueryInstances(spec, q));
  // CheckCertainMember returns true on inconsistent specifications (its
  // first Solve is UNSAT), matching the vacuous-truth convention.
  return CheckCertainMember(spec, q, t, instances, options);
}

}  // namespace currency::core
