#include "src/core/ccqa.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "src/core/decompose.h"
#include "src/core/sp_ccqa.h"
#include "src/exec/thread_pool.h"
#include "src/sat/model_enumerator.h"

namespace currency::core {

namespace {

/// Builds the query-visible database view from decoded current instances.
query::Database RestrictTo(const Specification& spec,
                           const std::vector<int>& instances,
                           const std::vector<Relation>& lst) {
  query::Database db;
  for (int i : instances) db[spec.instance(i).name()] = &lst[i];
  return db;
}

/// Blocking clause from a witness derivation: "some cell a derivation row
/// read takes a different current value".  Falls back to blocking the full
/// current-value profile of the query's relations when no support is
/// available (general FO bodies).
Result<std::vector<sat::Lit>> BlockingClause(
    const Encoder& encoder, const Specification& spec,
    const std::vector<int>& instances, const std::vector<Relation>& lst,
    const std::vector<query::SupportRow>* support) {
  std::vector<sat::Lit> clause;
  auto add_row = [&](int inst, const Relation& rel, int row) -> Status {
    const Tuple& t = rel.tuple(row);
    for (AttrIndex a = 1; a < rel.schema().arity(); ++a) {
      ASSIGN_OR_RETURN(sat::Lit lit,
                       encoder.CellValueLit(inst, a, t.eid(), t.at(a)));
      clause.push_back(sat::Negate(lit));
    }
    return Status::OK();
  };
  if (support != nullptr) {
    for (const query::SupportRow& row : *support) {
      ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(row.relation));
      RETURN_IF_ERROR(add_row(inst, lst[inst], row.row));
    }
  } else {
    for (int inst : instances) {
      const Relation& rel = lst[inst];
      for (int row = 0; row < rel.size(); ++row) {
        RETURN_IF_ERROR(add_row(inst, rel, row));
      }
    }
  }
  // Deduplicate literals (rows may overlap).
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  return clause;
}

}  // namespace

namespace internal {

Result<std::vector<int>> QueryInstances(const Specification& spec,
                                        const query::Query& q) {
  std::vector<int> out;
  for (const std::string& name : q.body->Relations()) {
    ASSIGN_OR_RETURN(int i, spec.InstanceIndex(name));
    out.push_back(i);
  }
  return out;
}

/// Conflict-driven certain-membership loop on a prebuilt encoder:
/// searches for a consistent completion whose current instance does NOT
/// answer `t`, blocking after each failed attempt only the cells the
/// witnessed derivation read.  Terminates because every iteration
/// excludes at least the current projected model; sound and complete per
/// the argument in eval.h.  The encoder must cover every entity of the
/// query's instances (a merged component encoder does).
Result<bool> CheckCertainMemberWith(Encoder* encoder,
                                    const Specification& spec,
                                    const query::Query& q, const Tuple& t,
                                    const std::vector<int>& instances,
                                    const CcqaOptions& options) {
  int64_t iterations = 0;
  while (encoder->solver().Solve() == sat::SolveResult::kSat) {
    if (++iterations > options.max_current_instances) {
      return Status::ResourceExhausted(
          "certain-membership search exceeded the current-instance budget");
    }
    ASSIGN_OR_RETURN(std::vector<Relation> lst,
                     encoder->DecodeCurrentInstances());
    query::Database db = RestrictTo(spec, instances, lst);
    auto with_support = query::EvalQueryWithSupport(q, db);
    const std::vector<query::SupportRow>* support = nullptr;
    if (with_support.ok()) {
      auto it = with_support->find(t);
      if (it == with_support->end()) return false;  // witness found
      support = &it->second;
    } else if (with_support.status().code() == StatusCode::kUnsupported) {
      ASSIGN_OR_RETURN(std::set<Tuple> answers, query::EvalQuery(q, db));
      if (!answers.count(t)) return false;  // witness found
    } else {
      return with_support.status();
    }
    ASSIGN_OR_RETURN(
        std::vector<sat::Lit> clause,
        BlockingClause(*encoder, spec, instances, lst, support));
    if (!encoder->solver().AddClause(std::move(clause))) break;
  }
  return true;  // every completion answers t
}

Result<std::set<Tuple>> CertainAnswersVia(
    Encoder* seed,
    const std::function<Result<std::unique_ptr<Encoder>>()>& make_encoder,
    const Specification& spec, const query::Query& q,
    const std::vector<int>& instances, const CcqaOptions& options) {
  // Candidates come from the seed encoder's first model (certain ⊆ each
  // Q(LST)), then each candidate gets a certain-membership check on a
  // fresh encoder (the membership loop mutates it with blocking clauses).
  if (seed->solver().Solve() == sat::SolveResult::kUnsat) {
    return Status::Inconsistent(
        "Mod(S) is empty: every tuple is vacuously a certain answer");
  }
  ASSIGN_OR_RETURN(std::vector<Relation> lst, seed->DecodeCurrentInstances());
  query::Database db = RestrictTo(spec, instances, lst);
  ASSIGN_OR_RETURN(std::set<Tuple> candidates, query::EvalQuery(q, db));
  std::set<Tuple> certain;
  for (const Tuple& t : candidates) {
    ASSIGN_OR_RETURN(auto encoder, make_encoder());
    ASSIGN_OR_RETURN(bool keep, CheckCertainMemberWith(encoder.get(), spec, q,
                                                       t, instances, options));
    if (keep) certain.insert(t);
  }
  return certain;
}

Result<std::set<Tuple>> SpAnswersViaComponentChases(
    DecomposedEncoder* decomposed, const Specification& spec,
    const query::Query& q, const std::vector<int>& relevant) {
  return SpAnswersViaComponentChases(
      [decomposed](int c) { return decomposed->ComponentChaseFixpoint(c); },
      spec, q, relevant);
}

Result<std::set<Tuple>> SpAnswersViaComponentChases(
    const std::function<Result<const ComponentChase*>(int)>& chase_for,
    const Specification& spec, const query::Query& q,
    const std::vector<int>& relevant) {
  std::vector<std::string> rels = q.body->Relations();
  if (rels.size() != 1) {
    return Status::Unsupported("SP query must reference exactly one relation");
  }
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(rels[0]));
  // Assemble the instance's PO∞ from its components' chase fixpoints.
  // Declared currency orders only relate tuples of one entity, and the
  // chase derives only within-group pairs, so the per-group fixpoints
  // carry every certain pair of the instance.
  std::vector<std::vector<PartialOrder>> orders(spec.num_instances());
  const TemporalInstance& instance = spec.instance(inst);
  orders[inst].assign(instance.schema().arity(),
                      PartialOrder(instance.relation().size()));
  for (int c : relevant) {
    ASSIGN_OR_RETURN(const ComponentChase* chase, chase_for(c));
    RETURN_IF_ERROR(MergeComponentOrdersInto(*chase, inst, &orders[inst]));
  }
  return SpAnswersFromCertainOrders(spec, orders, q);
}

}  // namespace internal

namespace {

/// The component-level SP fast path (Proposition 6.3 applied to S
/// restricted to the query's components): applies when chase routing is
/// on, `q` is SP over exactly one relation, and every component that
/// relation's entities touch is chase-eligible.  Denial constraints
/// elsewhere in the specification do not matter — Mod(S) factors over
/// components, so the query's answers are decided by the eligible
/// components' completions alone (given overall consistency, which
/// SolveAll establishes).  Returns an empty optional when the path does
/// not apply, Status::Inconsistent when Mod(S) = ∅, and the certain
/// current answers otherwise.
Result<std::optional<std::set<Tuple>>> TryComponentSpAnswers(
    DecomposedEncoder* decomposed, const Specification& spec,
    const query::Query& q, const std::vector<int>& relevant,
    const CcqaOptions& options, exec::ThreadPool* pool) {
  std::optional<std::set<Tuple>> not_applicable;
  if (!options.use_sp_fast_path || !decomposed->chase_routing() ||
      !query::IsSpQuery(q)) {
    return not_applicable;
  }
  std::vector<std::string> rels = q.body->Relations();
  if (rels.size() != 1) return not_applicable;
  for (int c : relevant) {
    if (!decomposed->decomposition().chase_eligible(c)) return not_applicable;
  }
  // Vacuity of the WHOLE specification — the intersection defining
  // certain answers ranges over completions of every component.
  ASSIGN_OR_RETURN(bool consistent, decomposed->SolveAll({}, pool));
  if (!consistent) {
    return Status::Inconsistent(
        "Mod(S) is empty: every tuple is vacuously a certain answer");
  }
  ASSIGN_OR_RETURN(
      std::set<Tuple> answers,
      internal::SpAnswersViaComponentChases(decomposed, spec, q, relevant));
  return std::optional<std::set<Tuple>>(std::move(answers));
}

/// Certain-membership check.  The decomposed path restricts the blocking
/// loop to the coupling components the query's instances touch; the other
/// components only matter through the Mod(S) = ∅ vacuity, which their
/// per-component consistency decides.
Result<bool> CheckCertainMember(const Specification& spec,
                                const query::Query& q, const Tuple& t,
                                const std::vector<int>& instances,
                                const CcqaOptions& options) {
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  if (options.use_decomposition) {
    ASSIGN_OR_RETURN(auto decomposed,
                     DecomposedEncoder::Build(spec, enc,
                                              options.use_chase_routing));
    std::vector<int> relevant =
        decomposed->decomposition().ComponentsOfInstances(instances);
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool* pool =
        exec::ResolvePool(options.pool, options.num_threads, local_pool);
    {
      auto sp = TryComponentSpAnswers(decomposed.get(), spec, q, relevant,
                                      options, pool);
      if (!sp.ok() && sp.status().code() == StatusCode::kInconsistent) {
        return true;  // Mod(S) = ∅: vacuously certain
      }
      RETURN_IF_ERROR(sp.status());
      if (sp->has_value()) return (**sp).count(t) > 0;
    }
    ASSIGN_OR_RETURN(bool rest_consistent,
                     decomposed->SolveAll(relevant, pool));
    if (!rest_consistent) return true;  // Mod(S) = ∅: vacuously certain
    ASSIGN_OR_RETURN(auto encoder, decomposed->BuildMergedEncoder(relevant));
    return internal::CheckCertainMemberWith(encoder.get(), spec, q, t,
                                            instances, options);
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  return internal::CheckCertainMemberWith(encoder.get(), spec, q, t,
                                          instances, options);
}

/// Enumerates the distinct current instances of one encoder's formula
/// (models projected onto the cell variables of `instances`), invoking
/// `visit` with the decoded relations per projected model; stops early
/// when `visit` returns false (reported as `stopped` in the outcome).
/// Shared by the monolithic enumeration and the per-component fragment
/// enumeration below.
Result<sat::ProjectedModelEnumeration> EnumerateEncoderCurrentInstances(
    Encoder* encoder, const std::vector<int>& instances, int64_t max_models,
    const std::function<bool(std::vector<Relation>)>& visit) {
  std::vector<sat::Var> projection = encoder->CellProjection(instances);
  Status inner = Status::OK();
  auto result = sat::EnumerateProjectedModels(
      &encoder->solver(), projection, max_models,
      [&](const std::vector<bool>&) {
        auto decoded = encoder->DecodeCurrentInstances();
        if (!decoded.ok()) {
          inner = decoded.status();
          return false;  // surfaces through `inner`, not as a user stop
        }
        return visit(*std::move(decoded));
      });
  RETURN_IF_ERROR(inner);
  return result;
}

/// Enumerates the current fragments of a chase-routed singleton component
/// directly from its chase fixpoint: with no denial constraint grounding
/// and no coupling copy bucket on the group, each attribute picks its
/// current value independently, so the fragments are the cartesian
/// product of the per-attribute certain-sink values (Lemma 6.2 on S|_c).
/// Output is capped at `budget`, mirroring the SAT enumerator's
/// max_models truncation.
Status AppendChaseFragments(DecomposedEncoder* decomposed,
                            const Specification& spec, int c, int64_t budget,
                            std::vector<std::vector<Relation>>* out) {
  ASSIGN_OR_RETURN(const ComponentChase* chase,
                   decomposed->ComponentChaseFixpoint(c));
  if (chase->nodes.size() != 1) {
    return Status::Internal("chase-enumerable component is not a singleton");
  }
  const ComponentChase::Node& node = chase->nodes.front();
  const Relation& rel = spec.instance(node.inst).relation();
  AttrIndex arity = spec.instance(node.inst).schema().arity();
  std::vector<int> all(node.members.size());
  for (size_t k = 0; k < all.size(); ++k) all[k] = static_cast<int>(k);
  // attr_values[a-1]: the distinct possible current values of attribute
  // a, in Value order.
  std::vector<std::vector<Value>> attr_values;
  for (AttrIndex a = 1; a < arity; ++a) {
    std::set<Value> distinct;
    for (int s : node.orders[a].SinksWithin(all)) {
      distinct.insert(rel.tuple(node.members[s]).at(a));
    }
    attr_values.emplace_back(distinct.begin(), distinct.end());
  }
  std::vector<size_t> pick(attr_values.size(), 0);
  while (static_cast<int64_t>(out->size()) < budget) {
    std::vector<Value> values(arity);
    values[0] = node.eid;
    for (AttrIndex a = 1; a < arity; ++a) {
      values[a] = attr_values[a - 1][pick[a - 1]];
    }
    std::vector<Relation> fragment;
    fragment.reserve(spec.num_instances());
    for (int i = 0; i < spec.num_instances(); ++i) {
      fragment.emplace_back(spec.instance(i).schema());
    }
    RETURN_IF_ERROR(
        fragment[node.inst].Append(Tuple(std::move(values))).status());
    out->push_back(std::move(fragment));
    // Advance the odometer.
    size_t a = 0;
    for (; a < pick.size(); ++a) {
      if (++pick[a] < attr_values[a].size()) break;
      pick[a] = 0;
    }
    if (a == pick.size()) break;
  }
  return Status::OK();
}

/// Serialization key of one fragment, used to canonicalize per-component
/// fragment order below.
std::string FragmentKey(const std::vector<Relation>& fragment) {
  std::string key;
  for (const Relation& rel : fragment) {
    for (const Tuple& t : rel.tuples()) {
      key += t.ToString();
      key += '\n';
    }
    key += '\x02';
  }
  return key;
}

/// Sorts a component's fragments by serialized content.  Chase-built
/// fragments and SAT-enumerated projected models traverse the same set in
/// different orders; canonicalizing makes the product walk's enumeration
/// order identical across routing modes (the differential suites assert
/// it bit-for-bit).
void SortFragments(std::vector<std::vector<Relation>>* fragments) {
  std::vector<std::pair<std::string, size_t>> keys;
  keys.reserve(fragments->size());
  for (size_t i = 0; i < fragments->size(); ++i) {
    keys.emplace_back(FragmentKey((*fragments)[i]), i);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::vector<Relation>> sorted;
  sorted.reserve(fragments->size());
  for (const auto& [key, i] : keys) {
    sorted.push_back(std::move((*fragments)[i]));
  }
  *fragments = std::move(sorted);
}

/// Decomposed current-instance enumeration: the distinct current
/// instances of S are the cartesian product of the per-component current
/// fragments, so each component is enumerated once (small SAT instances,
/// or the chase fixpoint directly for chase-enumerable components) and
/// the fragments are recombined without further solving.
Result<int64_t> ForEachCurrentInstanceDecomposed(
    const Specification& spec, const Encoder::Options& enc,
    const CcqaOptions& options,
    const std::function<bool(const query::Database&)>& visit) {
  ASSIGN_OR_RETURN(auto decomposed,
                   DecomposedEncoder::Build(spec, enc,
                                            options.use_chase_routing));
  std::optional<exec::ThreadPool> local_pool;
  exec::ThreadPool* pool =
      exec::ResolvePool(options.pool, options.num_threads, local_pool);
  // A single UNSAT component empties Mod(S); detect that with one cheap
  // solve per component before enumerating any fragments (a huge earlier
  // component must not burn the budget when a later one is empty).
  ASSIGN_OR_RETURN(bool consistent, decomposed->SolveAll({}, pool));
  if (!consistent) return 0;
  int num_components = decomposed->num_components();
  std::vector<int> all;
  for (int i = 0; i < spec.num_instances(); ++i) all.push_back(i);
  // fragments[c]: the distinct current fragments of component c, each a
  // per-instance vector of partial relations.  Components enumerate
  // concurrently — each task mutates only its own component encoder (the
  // blocking clauses it adds stay confined there) and fills only its own
  // fragments slot, so every component's fragment list and order is the
  // one the sequential loop computes.  Task outcomes land in per-index
  // slots and are aggregated below in component order, which reproduces
  // the sequential loop's first-error/first-empty semantics: ParallelFor
  // claims indices in increasing order, so tasks skipped by cancellation
  // always form a suffix behind the genuine cause.
  std::vector<Status> component_status(num_components, Status::OK());
  std::vector<std::vector<std::vector<Relation>>> fragments(num_components);
  exec::CancellationToken cancel;
  RETURN_IF_ERROR(pool->ParallelFor(
      num_components,
      [&](int c) -> Status {
        if (decomposed->chase_routed_enumerable(c)) {
          // SolveAll above established the fixpoint's consistency, so
          // the fragment product is never empty here.
          Status built =
              AppendChaseFragments(decomposed.get(), spec, c,
                                   options.max_current_instances,
                                   &fragments[c]);
          if (!built.ok()) {
            component_status[c] = built;
            cancel.Cancel();
          } else {
            SortFragments(&fragments[c]);
          }
          return Status::OK();
        }
        // Chase-routed components that are NOT enumerable (multi-node, or
        // touched by a coupling copy bucket) fall back to the SAT
        // enumerator: ComponentEncoder builds theirs on first use.
        auto encoder = decomposed->ComponentEncoder(c);
        if (!encoder.ok()) {
          component_status[c] = encoder.status();
          cancel.Cancel();
          return Status::OK();
        }
        auto enumerated = EnumerateEncoderCurrentInstances(
            *encoder, all, options.max_current_instances,
            [&](std::vector<Relation> decoded) {
              fragments[c].push_back(std::move(decoded));
              return true;
            });
        if (!enumerated.ok()) {
          component_status[c] = enumerated.status();
          cancel.Cancel();
        } else if (fragments[c].empty()) {
          cancel.Cancel();  // component UNSAT: Mod(S) = ∅, answered below
        } else {
          SortFragments(&fragments[c]);
        }
        return Status::OK();
      },
      &cancel));
  for (int c = 0; c < num_components; ++c) {
    RETURN_IF_ERROR(component_status[c]);
    if (fragments[c].empty()) return 0;  // some component UNSAT: Mod(S) = ∅
  }
  // Walk the cartesian product (odometer order); an empty component list
  // — a specification without entities — still has the one empty current
  // instance, which the odometer's single combination covers.
  std::vector<size_t> pick(num_components, 0);
  int64_t count = 0;
  while (true) {
    if (count >= options.max_current_instances) {
      return Status::ResourceExhausted(
          "model enumeration exceeded " +
          std::to_string(options.max_current_instances) +
          " projected models");
    }
    std::vector<Relation> merged;
    merged.reserve(spec.num_instances());
    for (int i = 0; i < spec.num_instances(); ++i) {
      merged.emplace_back(spec.instance(i).schema());
    }
    for (int c = 0; c < num_components; ++c) {
      const std::vector<Relation>& fragment = fragments[c][pick[c]];
      for (int i = 0; i < spec.num_instances(); ++i) {
        for (const Tuple& tuple : fragment[i].tuples()) {
          RETURN_IF_ERROR(merged[i].Append(tuple).status());
        }
      }
    }
    ++count;
    query::Database db;
    for (int i = 0; i < spec.num_instances(); ++i) {
      db[spec.instance(i).name()] = &merged[i];
    }
    if (!visit(db)) return count;
    // Advance the odometer.
    int c = 0;
    for (; c < num_components; ++c) {
      if (++pick[c] < fragments[c].size()) break;
      pick[c] = 0;
    }
    if (c == num_components) return count;
  }
}

}  // namespace

Result<int64_t> ForEachCurrentInstance(
    const Specification& spec, const CcqaOptions& options,
    const std::function<bool(const query::Database&)>& visit) {
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  if (options.use_decomposition) {
    return ForEachCurrentInstanceDecomposed(spec, enc, options, visit);
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  std::vector<int> all;
  for (int i = 0; i < spec.num_instances(); ++i) all.push_back(i);
  ASSIGN_OR_RETURN(sat::ProjectedModelEnumeration enumeration,
                   EnumerateEncoderCurrentInstances(
                       encoder.get(), all, options.max_current_instances,
                       [&](std::vector<Relation> decoded) {
                         query::Database db;
                         for (int i = 0; i < spec.num_instances(); ++i) {
                           db[spec.instance(i).name()] = &decoded[i];
                         }
                         return visit(db);
                       }));
  return enumeration.models;
}

Result<std::set<Tuple>> CertainCurrentAnswers(const Specification& spec,
                                              const query::Query& q,
                                              const CcqaOptions& options) {
  if (options.use_sp_fast_path && !spec.HasDenialConstraints() &&
      query::IsSpQuery(q)) {
    return SpCertainCurrentAnswers(spec, q);
  }
  ASSIGN_OR_RETURN(std::vector<int> instances,
                   internal::QueryInstances(spec, q));
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  if (options.use_decomposition) {
    ASSIGN_OR_RETURN(auto decomposed,
                     DecomposedEncoder::Build(spec, enc,
                                              options.use_chase_routing));
    std::vector<int> relevant =
        decomposed->decomposition().ComponentsOfInstances(instances);
    // Vacuity of the untouched components, checked once for all
    // candidates; the touched ones are covered by the merged seed solve.
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool* pool =
        exec::ResolvePool(options.pool, options.num_threads, local_pool);
    {
      ASSIGN_OR_RETURN(std::optional<std::set<Tuple>> sp,
                       TryComponentSpAnswers(decomposed.get(), spec, q,
                                             relevant, options, pool));
      if (sp.has_value()) return *std::move(sp);
    }
    ASSIGN_OR_RETURN(bool rest_consistent,
                     decomposed->SolveAll(relevant, pool));
    if (!rest_consistent) {
      return Status::Inconsistent(
          "Mod(S) is empty: every tuple is vacuously a certain answer");
    }
    ASSIGN_OR_RETURN(auto seed, decomposed->BuildMergedEncoder(relevant));
    return internal::CertainAnswersVia(
        seed.get(), [&] { return decomposed->BuildMergedEncoder(relevant); },
        spec, q, instances, options);
  }
  ASSIGN_OR_RETURN(auto seed, Encoder::Build(spec, enc));
  return internal::CertainAnswersVia(
      seed.get(), [&] { return Encoder::Build(spec, enc); }, spec, q,
      instances, options);
}

Result<bool> IsCertainCurrentAnswer(const Specification& spec,
                                    const query::Query& q, const Tuple& t,
                                    const CcqaOptions& options) {
  if (static_cast<size_t>(t.arity()) != q.head.size()) {
    return Status::InvalidArgument(
        "candidate tuple arity does not match query head");
  }
  if (options.use_sp_fast_path && !spec.HasDenialConstraints() &&
      query::IsSpQuery(q)) {
    auto answers = SpCertainCurrentAnswers(spec, q);
    if (!answers.ok() && answers.status().code() == StatusCode::kInconsistent) {
      return true;  // vacuous
    }
    RETURN_IF_ERROR(answers.status());
    return answers->count(t) > 0;
  }
  ASSIGN_OR_RETURN(std::vector<int> instances,
                   internal::QueryInstances(spec, q));
  // CheckCertainMember returns true on inconsistent specifications (its
  // first Solve is UNSAT), matching the vacuous-truth convention.
  return CheckCertainMember(spec, q, t, instances, options);
}

}  // namespace currency::core
