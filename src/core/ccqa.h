// CCQA — certain current query answering (Section 3): a tuple t is a
// certain current answer to Q w.r.t. S iff t ∈ Q(LST(Dc)) for every
// consistent completion Dc of S.
//
// Complexity (Theorem 3.5): coNP-complete data complexity for all of
// CQ/UCQ/∃FO+/FO; combined complexity Πp2-complete for CQ/UCQ/∃FO+ and
// PSPACE-complete for FO.  With SP queries and no denial constraints the
// problem is PTIME (Proposition 6.3, see sp_ccqa.h); the general solver
// dispatches there automatically.
//
// The general algorithm enumerates the *distinct current instances* of S
// (models of the order encoding projected onto the is-last selectors) and
// intersects Q over them, mirroring the guess-and-check upper bound.

#ifndef CURRENCY_SRC_CORE_CCQA_H_
#define CURRENCY_SRC_CORE_CCQA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/common/result.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/query/classify.h"
#include "src/query/eval.h"

namespace currency::exec {
class ThreadPool;
}  // namespace currency::exec

namespace currency::core {

class DecomposedEncoder;
struct ComponentChase;

/// Options for the CCQA solvers.
struct CcqaOptions {
  /// Budget on distinct current instances enumerated by the general path.
  /// On the decomposed path this additionally bounds every component's
  /// own fragment count (each is a factor of the product, so a component
  /// exceeding the budget implies the product does too).
  int64_t max_current_instances = 1'000'000;
  /// Dispatch SP queries on constraint-free specifications to the PTIME
  /// algorithm of Proposition 6.3.
  bool use_sp_fast_path = true;
  /// Split the SAT path along the coupling graph: certain-membership
  /// loops run on a merged encoder covering only the components the
  /// query's instances touch, and current-instance enumeration walks the
  /// cartesian product of per-component fragments.  Note the product
  /// walk materializes each component's fragments before visiting any
  /// combination, so callers that stop early still pay the per-component
  /// enumeration (never more than the budget above).
  bool use_decomposition = true;
  /// On the decomposed path, serve chase-eligible components (no denial
  /// constraint grounds on any of their entity groups) from the
  /// polynomial chase fixpoint instead of SAT: enumeration builds their
  /// current fragments directly from the per-attribute certain sinks
  /// (singleton, uncoupled components), and SP queries whose relevant
  /// components are all eligible answer via Proposition 6.3 on the
  /// assembled component orders — even when the specification carries
  /// denial constraints elsewhere.  SAT remains the fallback.
  bool use_chase_routing = true;
  /// Threads for the decomposed path: consistency pre-solves and the
  /// per-component current-fragment enumerations run concurrently (the
  /// certain-membership blocking loop itself stays sequential — it works
  /// one merged encoder).  1 (the default) runs sequentially; answers,
  /// counts and enumeration order are bit-identical for every value.
  int num_threads = 1;
  /// Optional caller-owned pool reused across calls (overrides
  /// `num_threads`; not owned).  See CpsOptions::pool.
  exec::ThreadPool* pool = nullptr;
  Encoder::Options encoder;
};

/// Computes the full set of certain current answers ∩_Dc Q(LST(Dc)).
/// Returns Status::Inconsistent when Mod(S) = ∅ (every tuple is then
/// vacuously certain, so no finite answer set exists).
Result<std::set<Tuple>> CertainCurrentAnswers(const Specification& spec,
                                              const query::Query& q,
                                              const CcqaOptions& options = {});

/// Decides whether `t` is a certain current answer (vacuously true when
/// Mod(S) = ∅, matching the paper's convention).
Result<bool> IsCertainCurrentAnswer(const Specification& spec,
                                    const query::Query& q, const Tuple& t,
                                    const CcqaOptions& options = {});

/// Enumerates the distinct current instances of S (at most `options.
/// max_current_instances`), invoking `visit` with a database of current
/// relations; stops early when `visit` returns false.  Returns the number
/// visited.  Exposed for DCIP-style analyses and the benchmarks.
Result<int64_t> ForEachCurrentInstance(
    const Specification& spec, const CcqaOptions& options,
    const std::function<bool(const query::Database&)>& visit);

namespace internal {

/// Instance indices of the relations `q` mentions, in body order.
Result<std::vector<int>> QueryInstances(const Specification& spec,
                                        const query::Query& q);

/// The conflict-driven certain-membership loop on a caller-built encoder
/// covering every entity of the query's instances (a merged component
/// encoder from DecomposedEncoder::BuildMergedEncoder does).  Mutates the
/// encoder with blocking clauses, so callers must hand in a throwaway
/// encoder — never a cached component encoder.  Returns true when every
/// consistent completion's current instance answers `t` (vacuously true
/// when the encoder is UNSAT).  Shared by the one-shot CCQA solvers and
/// the serving layer's CcqaBatch.
Result<bool> CheckCertainMemberWith(Encoder* encoder,
                                    const Specification& spec,
                                    const query::Query& q, const Tuple& t,
                                    const std::vector<int>& instances,
                                    const CcqaOptions& options);

/// The candidate-and-check loop behind CertainCurrentAnswers: candidates
/// come from `seed`'s first model (certain answers are a subset of every
/// Q(LST)), then each candidate runs CheckCertainMemberWith on a fresh
/// encoder from `make_encoder`.  Returns Status::Inconsistent when the
/// seed is UNSAT (Mod(S) = ∅).
Result<std::set<Tuple>> CertainAnswersVia(
    Encoder* seed,
    const std::function<Result<std::unique_ptr<Encoder>>()>& make_encoder,
    const Specification& spec, const query::Query& q,
    const std::vector<int>& instances, const CcqaOptions& options);

/// The chase-routed SP path shared by the one-shot solvers and the
/// serving layer's CcqaBatch: assembles the query instance's PO∞ from the
/// chase fixpoints of `relevant` and answers `q` via Proposition 6.3.
/// Preconditions the caller must have established: Mod(S) ≠ ∅, `q` is SP
/// over exactly one relation, and `relevant` is exactly that relation's
/// components, all chase-eligible.  Only reads cached fixpoints (computing
/// missing ones), so concurrent callers must warm them first.
Result<std::set<Tuple>> SpAnswersViaComponentChases(
    DecomposedEncoder* decomposed, const Specification& spec,
    const query::Query& q, const std::vector<int>& relevant);

/// As above, but with a caller-supplied fixpoint lookup instead of a
/// DecomposedEncoder — for callers whose fixpoints live elsewhere (the
/// serving layer's epochs cache them in per-component slots).  `chase_for`
/// must return the fixpoint of the given (chase-eligible) component.
Result<std::set<Tuple>> SpAnswersViaComponentChases(
    const std::function<Result<const ComponentChase*>(int)>& chase_for,
    const Specification& spec, const query::Query& q,
    const std::vector<int>& relevant);

}  // namespace internal

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_CCQA_H_
