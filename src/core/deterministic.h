// DCIP — the deterministic current instance problem (Section 3): given S
// and a relation R in S, is the current instance of R the same in every
// consistent completion?
//
// Complexity (Theorem 3.4): coNP-complete (data), Πp2-complete (combined);
// PTIME without denial constraints via sink-agreement on PO∞
// (Theorem 6.1).  Vacuously true when Mod(S) = ∅.

#ifndef CURRENCY_SRC_CORE_DETERMINISTIC_H_
#define CURRENCY_SRC_CORE_DETERMINISTIC_H_

#include <string>

#include "src/common/result.h"
#include "src/core/chase.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/sat/portfolio.h"

namespace currency::exec {
class ThreadPool;
}  // namespace currency::exec

namespace currency::core {

/// Options for the DCIP solvers.
struct DcipOptions {
  /// Use the PTIME sink-agreement check when no denial constraints exist.
  bool use_ptime_path_without_constraints = true;
  /// Split the SAT path along the coupling graph: every entity group's
  /// determinism is probed inside its own component encoder.
  bool use_decomposition = true;
  /// On the decomposed path, decide chase-eligible components by
  /// sink-agreement on the component chase fixpoint (Theorem 6.1(3)
  /// applied to S|_c) instead of SAT probes; SAT remains the fallback for
  /// constrained components.
  bool use_chase_routing = true;
  /// Threads for the decomposed path: the consistency pre-solve and the
  /// per-component determinism probes run concurrently (each component's
  /// probe sequence is confined to one task).  1 (the default) runs
  /// sequentially; the answer is bit-identical for every value.
  int num_threads = 1;
  /// Optional caller-owned pool reused across calls (overrides
  /// `num_threads`; not owned).  See CpsOptions::pool.
  exec::ThreadPool* pool = nullptr;
  /// Verdict-deterministic portfolio racing for dominant components (off
  /// by default): the consistency pre-solve and the phase-2 determinism
  /// probes of components with at least `portfolio.min_component_size`
  /// entity groups race diversified solvers, first verdict wins.  The
  /// phase-1 baseline still reads a model, so dominant components
  /// re-Solve their primary once before probing; the DCIP answer is
  /// model-independent and thus unchanged.
  sat::PortfolioOptions portfolio;
  Encoder::Options encoder;
};

/// Decides whether S is deterministic for current `relation` instances.
Result<bool> IsDeterministicForRelation(const Specification& spec,
                                        const std::string& relation,
                                        const DcipOptions& options = {});

/// Decides whether S is deterministic for all its current instances.
Result<bool> IsDeterministic(const Specification& spec,
                             const DcipOptions& options = {});

namespace internal {

/// The SAT-path determinism probe shared by the one-shot DCIP solvers and
/// the serving layer's DcipBatch: decides determinism of `inst`'s entity
/// groups whose is-last selectors `encoder` defines (on a component
/// encoder that is exactly the component's own groups).  Requires the
/// encoder's solver to currently hold a satisfying model; the probe
/// sequence generally leaves it without one, so callers re-Solve before
/// probing again.  The answer is model-independent: whichever baseline
/// model is in hand, some alternative-value candidate is satisfiable iff
/// the group's current instance is not unique.  When `portfolio` is
/// non-null (its primary must be `encoder`'s solver), the phase-2 probes
/// race diversified solvers — verdict-only, so the answer is identical.
Result<bool> DeterministicProbe(const Specification& spec, Encoder* encoder,
                                int inst,
                                sat::Portfolio* portfolio = nullptr);

/// The chase-path determinism check shared by the one-shot DCIP solvers
/// and the serving layer: for every entity group of `inst` inside the
/// (chase-eligible) component, all certain sinks of each attribute's
/// component PO∞ must agree on the attribute value (Theorem 6.1(3)
/// applied to S|_c).  Groups of other instances or components are simply
/// absent from `chase` and checked elsewhere.
bool DeterministicViaComponentChase(const Specification& spec,
                                    const ComponentChase& chase, int inst);

}  // namespace internal

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_DETERMINISTIC_H_
