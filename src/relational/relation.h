// Relation: a normal instance D of a schema R (Section 2 of the paper) —
// a finite bag-free set of tuples, stored with stable integer ids so that
// partial currency orders can refer to tuples positionally.

#ifndef CURRENCY_SRC_RELATIONAL_RELATION_H_
#define CURRENCY_SRC_RELATIONAL_RELATION_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"

namespace currency {

/// Stable index of a tuple within a Relation.
using TupleId = int;

/// A normal instance of a schema: an ordered container of tuples with
/// stable TupleIds.  Duplicate tuples are allowed (the paper's instances
/// distinguish tuples by identity, not value — e.g. t1 and t2 in Fig. 1
/// have identical non-EID attributes in some gadgets).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Appends a tuple; fails if the arity does not match the schema.
  /// Returns the new tuple's id.
  Result<TupleId> Append(Tuple tuple);

  /// Appends a tuple built from values (EID first).
  Result<TupleId> AppendValues(std::vector<Value> values) {
    return Append(Tuple(std::move(values)));
  }

  /// Overwrites one cell in place (attr 0 is the EID, so an EID edit moves
  /// the tuple between entity groups).  The tuple count and all TupleIds
  /// are stable, which is what lets partial currency orders and copy
  /// mappings keep their referents across edits — the serving layer's
  /// Mutate path relies on this.  Invalidates EntityGroups().
  Status UpdateValue(TupleId id, AttrIndex attr, Value v);

  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(TupleId id) const { return tuples_[id]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Distinct entity ids appearing in the instance, in Value order.
  std::vector<Value> Entities() const;

  /// Tuple ids grouped by entity: eid -> sorted tuple ids.  Cached: the
  /// grouping is computed once and invalidated by Append, so hot paths
  /// (the encoder visits it several times per build, the decomposition
  /// layer once per component) pay O(1) after the first call.  The
  /// reference is invalidated by the next Append.
  const std::map<Value, std::vector<TupleId>>& EntityGroups() const;

  /// Tuple ids pertaining to `eid` (empty if the entity is absent).
  std::vector<TupleId> TuplesOf(const Value& eid) const;

  /// All constants occurring in the instance (the active domain).
  std::set<Value> ActiveDomain() const;

  /// True iff some tuple equals `t` (by value).
  bool ContainsValue(const Tuple& t) const;

  /// Pretty table rendering for examples and debugging.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  /// Lazily built entity grouping; shared (never mutated) so Relation
  /// stays cheaply copyable, reset on Append.
  mutable std::shared_ptr<const std::map<Value, std::vector<TupleId>>>
      entity_groups_;
};

}  // namespace currency

#endif  // CURRENCY_SRC_RELATIONAL_RELATION_H_
