// Schema: a relation schema R = (EID, A1, ..., An) as in Section 2 of the
// paper.  The first attribute is always the entity id (EID) that groups
// tuples pertaining to the same real-world entity (Codd-style surrogate,
// produced by an external entity-resolution step).

#ifndef CURRENCY_SRC_RELATIONAL_SCHEMA_H_
#define CURRENCY_SRC_RELATIONAL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace currency {

/// Index of an attribute within a schema (0 is always the EID).
using AttrIndex = int;

/// A named relation schema.  Attribute 0 is the EID; attributes 1..n are
/// the data attributes A1..An that carry currency orders.
class Schema {
 public:
  Schema() = default;

  /// Creates a schema.  `attributes` must not include the EID; it is
  /// prepended automatically under the name `eid_name` (default "EID").
  /// Fails if names are not unique identifiers.
  static Result<Schema> Make(std::string relation_name,
                             std::vector<std::string> attributes,
                             std::string eid_name = "EID");

  /// The relation name (e.g. "Emp").
  const std::string& relation_name() const { return relation_name_; }

  /// Total number of attributes, EID included.
  int arity() const { return static_cast<int>(names_.size()); }

  /// Number of data attributes (arity() - 1).
  int num_data_attributes() const { return arity() - 1; }

  /// Name of attribute `i` (0 = EID).
  const std::string& attribute_name(AttrIndex i) const { return names_[i]; }

  /// All attribute names, EID first.
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Index of `name`, or error if absent.
  Result<AttrIndex> IndexOf(const std::string& name) const;

  /// True iff `name` is an attribute of this schema.
  bool HasAttribute(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Indices of the data attributes: 1..arity()-1.
  std::vector<AttrIndex> DataAttributes() const;

  /// "R(EID, A1, ..., An)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return relation_name_ == other.relation_name_ && names_ == other.names_;
  }

 private:
  std::string relation_name_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrIndex> index_;
};

}  // namespace currency

#endif  // CURRENCY_SRC_RELATIONAL_SCHEMA_H_
