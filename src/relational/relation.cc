#include "src/relational/relation.h"

#include <algorithm>
#include <sstream>

namespace currency {

Result<TupleId> Relation::Append(Tuple tuple) {
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.arity()) +
        " does not match schema " + schema_.ToString());
  }
  tuples_.push_back(std::move(tuple));
  entity_groups_.reset();
  return static_cast<TupleId>(tuples_.size() - 1);
}

Status Relation::UpdateValue(TupleId id, AttrIndex attr, Value v) {
  if (id < 0 || id >= size()) {
    return Status::InvalidArgument("tuple id " + std::to_string(id) +
                                   " out of range for " +
                                   schema_.relation_name());
  }
  if (attr < 0 || attr >= schema_.arity()) {
    return Status::InvalidArgument("attribute index " + std::to_string(attr) +
                                   " out of range for " + schema_.ToString());
  }
  tuples_[id].at(attr) = std::move(v);
  entity_groups_.reset();
  return Status::OK();
}

std::vector<Value> Relation::Entities() const {
  std::set<Value> seen;
  for (const Tuple& t : tuples_) seen.insert(t.eid());
  return std::vector<Value>(seen.begin(), seen.end());
}

const std::map<Value, std::vector<TupleId>>& Relation::EntityGroups() const {
  if (entity_groups_ == nullptr) {
    auto groups = std::make_shared<std::map<Value, std::vector<TupleId>>>();
    for (TupleId id = 0; id < size(); ++id) {
      (*groups)[tuples_[id].eid()].push_back(id);
    }
    entity_groups_ = std::move(groups);
  }
  return *entity_groups_;
}

std::vector<TupleId> Relation::TuplesOf(const Value& eid) const {
  std::vector<TupleId> out;
  for (TupleId id = 0; id < size(); ++id) {
    if (tuples_[id].eid() == eid) out.push_back(id);
  }
  return out;
}

std::set<Value> Relation::ActiveDomain() const {
  std::set<Value> out;
  for (const Tuple& t : tuples_) {
    for (const Value& v : t.values()) out.insert(v);
  }
  return out;
}

bool Relation::ContainsValue(const Tuple& t) const {
  return std::find(tuples_.begin(), tuples_.end(), t) != tuples_.end();
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << schema_.ToString() << "\n";
  // Compute column widths for alignment.
  std::vector<size_t> width(schema_.arity());
  for (int i = 0; i < schema_.arity(); ++i) {
    width[i] = schema_.attribute_name(i).size();
  }
  for (const Tuple& t : tuples_) {
    for (int i = 0; i < t.arity(); ++i) {
      width[i] = std::max(width[i], t.at(i).ToString().size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      os << std::string(width[i] - cells[i].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(schema_.attribute_names());
  for (TupleId id = 0; id < size(); ++id) {
    std::vector<std::string> cells;
    cells.reserve(schema_.arity());
    for (int i = 0; i < schema_.arity(); ++i) {
      cells.push_back(tuples_[id].at(i).ToString());
    }
    emit_row(cells);
  }
  return os.str();
}

}  // namespace currency
