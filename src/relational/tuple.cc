#include "src/relational/tuple.h"

namespace currency {

bool Tuple::operator<(const Tuple& other) const {
  int n = std::min(arity(), other.arity());
  for (int i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return arity() < other.arity();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace currency
