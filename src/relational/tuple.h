// Tuple: a row of Values conforming to some Schema (EID in position 0).
//
// Follows the paper's convention (Section 2) that every relation carries
// an entity-id attribute identifying the real-world entity a tuple
// describes; tuples sharing an EID are the "pertain to the same entity"
// groups that currency orders range over.

#ifndef CURRENCY_SRC_RELATIONAL_TUPLE_H_
#define CURRENCY_SRC_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace currency {

/// A row of dynamically typed values.  Position 0 is the entity id.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  const Value& at(int i) const { return values_[i]; }
  Value& at(int i) { return values_[i]; }
  const Value& eid() const { return values_[0]; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  /// Lexicographic order on values (total, for deterministic output).
  bool operator<(const Tuple& other) const;

  /// "(v0, v1, ..., vn)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace currency

#endif  // CURRENCY_SRC_RELATIONAL_TUPLE_H_
