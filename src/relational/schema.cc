#include "src/relational/schema.h"

#include "src/common/strings.h"

namespace currency {

Result<Schema> Schema::Make(std::string relation_name,
                            std::vector<std::string> attributes,
                            std::string eid_name) {
  if (!IsIdentifier(relation_name)) {
    return Status::InvalidArgument("relation name '" + relation_name +
                                   "' is not an identifier");
  }
  Schema schema;
  schema.relation_name_ = std::move(relation_name);
  schema.names_.push_back(std::move(eid_name));
  for (auto& attr : attributes) {
    schema.names_.push_back(std::move(attr));
  }
  for (int i = 0; i < schema.arity(); ++i) {
    const std::string& name = schema.names_[i];
    if (!IsIdentifier(name)) {
      return Status::InvalidArgument("attribute name '" + name +
                                     "' is not an identifier");
    }
    auto [it, inserted] = schema.index_.emplace(name, i);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name '" + name +
                                     "'");
    }
  }
  return schema;
}

Result<AttrIndex> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema " +
                            relation_name_);
  }
  return it->second;
}

std::vector<AttrIndex> Schema::DataAttributes() const {
  std::vector<AttrIndex> out;
  for (int i = 1; i < arity(); ++i) out.push_back(i);
  return out;
}

std::string Schema::ToString() const {
  return relation_name_ + "(" + Join(names_, ", ") + ")";
}

}  // namespace currency
