#include "src/wire/spec.h"

#include <utility>

#include "src/wire/wire.h"

namespace currency::wire {

namespace {

constexpr char kSpecMagic[5] = "CSPC";
constexpr uint32_t kSpecVersion = 1;
constexpr char kEditsMagic[5] = "CEDT";
constexpr uint32_t kEditsVersion = 1;

void PutOperand(Writer* w, const constraints::Operand& op) {
  w->U8(op.is_const ? 1 : 0);
  if (op.is_const) {
    w->Val(op.constant);
  } else {
    w->I32(op.tuple_var);
    w->I32(op.attr);
  }
}

Result<constraints::Operand> GetOperand(Reader* r) {
  ASSIGN_OR_RETURN(uint8_t is_const, r->U8());
  if (is_const) {
    ASSIGN_OR_RETURN(Value v, r->Val());
    return constraints::Operand::Const(std::move(v));
  }
  ASSIGN_OR_RETURN(int32_t tuple_var, r->I32());
  ASSIGN_OR_RETURN(int32_t attr, r->I32());
  return constraints::Operand::Attr(tuple_var, attr);
}

void PutOrderAtom(Writer* w, const constraints::OrderAtom& a) {
  w->I32(a.before);
  w->I32(a.after);
  w->I32(a.attr);
}

Result<constraints::OrderAtom> GetOrderAtom(Reader* r) {
  constraints::OrderAtom a;
  ASSIGN_OR_RETURN(a.before, r->I32());
  ASSIGN_OR_RETURN(a.after, r->I32());
  ASSIGN_OR_RETURN(a.attr, r->I32());
  return a;
}

void PutConstraint(Writer* w, const constraints::DenialConstraint& dc) {
  w->U32(static_cast<uint32_t>(dc.num_tuple_vars()));
  w->U32(static_cast<uint32_t>(dc.compares().size()));
  for (const constraints::ComparePredicate& cp : dc.compares()) {
    w->U8(static_cast<uint8_t>(cp.op));
    PutOperand(w, cp.lhs);
    PutOperand(w, cp.rhs);
  }
  w->U32(static_cast<uint32_t>(dc.order_premises().size()));
  for (const constraints::OrderAtom& a : dc.order_premises()) {
    PutOrderAtom(w, a);
  }
  PutOrderAtom(w, dc.conclusion());
}

Result<constraints::DenialConstraint> GetConstraint(Reader* r,
                                                    const Schema& schema) {
  ASSIGN_OR_RETURN(uint32_t num_vars, r->U32());
  ASSIGN_OR_RETURN(uint32_t ncompares, r->U32());
  RETURN_IF_ERROR(r->CheckCount(ncompares, /*min op+2 operand tags*/ 3));
  std::vector<constraints::ComparePredicate> compares;
  compares.reserve(ncompares);
  for (uint32_t k = 0; k < ncompares; ++k) {
    constraints::ComparePredicate cp;
    ASSIGN_OR_RETURN(uint8_t op, r->U8());
    if (op > static_cast<uint8_t>(CmpOp::kGe)) {
      return Status::InvalidArgument("wire: unknown compare op " +
                                     std::to_string(op));
    }
    cp.op = static_cast<CmpOp>(op);
    ASSIGN_OR_RETURN(cp.lhs, GetOperand(r));
    ASSIGN_OR_RETURN(cp.rhs, GetOperand(r));
    compares.push_back(std::move(cp));
  }
  ASSIGN_OR_RETURN(uint32_t npremises, r->U32());
  RETURN_IF_ERROR(r->CheckCount(npremises, 12));
  std::vector<constraints::OrderAtom> premises;
  premises.reserve(npremises);
  for (uint32_t k = 0; k < npremises; ++k) {
    ASSIGN_OR_RETURN(constraints::OrderAtom a, GetOrderAtom(r));
    premises.push_back(a);
  }
  ASSIGN_OR_RETURN(constraints::OrderAtom conclusion, GetOrderAtom(r));
  // Make re-validates every index against the schema, so a corrupt buffer
  // cannot install an out-of-range constraint.
  return constraints::DenialConstraint::Make(schema,
                                             static_cast<int>(num_vars),
                                             std::move(compares),
                                             std::move(premises), conclusion);
}

}  // namespace

void AppendSpecification(const core::Specification& spec, std::string* out) {
  Writer w;
  w.Magic(kSpecMagic, kSpecVersion);
  w.U32(static_cast<uint32_t>(spec.num_instances()));
  for (int i = 0; i < spec.num_instances(); ++i) {
    const core::TemporalInstance& inst = spec.instance(i);
    const Schema& schema = inst.schema();
    const Relation& rel = inst.relation();
    w.Str(schema.relation_name());
    w.U32(static_cast<uint32_t>(schema.arity()));
    for (const std::string& name : schema.attribute_names()) w.Str(name);
    w.U32(static_cast<uint32_t>(rel.size()));
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t.values()) w.Val(v);
    }
    // Initial currency orders, attr 1.. (attr 0 is the always-empty EID
    // placeholder).  Pairs() is the lexicographic transitive closure —
    // deterministic, and re-adding it reproduces the closure exactly.
    for (AttrIndex a = 1; a < schema.arity(); ++a) {
      std::vector<std::pair<int, int>> pairs = inst.order(a).Pairs();
      w.U32(static_cast<uint32_t>(pairs.size()));
      for (const auto& [u, v] : pairs) {
        w.U32(static_cast<uint32_t>(u));
        w.U32(static_cast<uint32_t>(v));
      }
    }
    const auto& cs = spec.constraints_for(i);
    w.U32(static_cast<uint32_t>(cs.size()));
    for (const constraints::DenialConstraint& dc : cs) {
      PutConstraint(&w, dc);
    }
  }
  w.U32(static_cast<uint32_t>(spec.copy_edges().size()));
  for (const core::CopyEdge& edge : spec.copy_edges()) {
    const copy::CopySignature& sig = edge.fn.signature();
    w.Str(sig.target_relation);
    w.U32(static_cast<uint32_t>(sig.target_attrs.size()));
    for (const std::string& a : sig.target_attrs) w.Str(a);
    w.Str(sig.source_relation);
    w.U32(static_cast<uint32_t>(sig.source_attrs.size()));
    for (const std::string& a : sig.source_attrs) w.Str(a);
    w.U32(static_cast<uint32_t>(edge.fn.mapping().size()));
    for (const auto& [t, s] : edge.fn.mapping()) {
      w.U32(static_cast<uint32_t>(t));
      w.U32(static_cast<uint32_t>(s));
    }
  }
  out->append(w.data());
}

std::string SerializeSpecification(const core::Specification& spec) {
  std::string out;
  AppendSpecification(spec, &out);
  return out;
}

Result<core::Specification> ParseSpecification(std::string_view bytes) {
  Reader r(bytes);
  RETURN_IF_ERROR(r.Magic(kSpecMagic, kSpecVersion));
  core::Specification spec;
  ASSIGN_OR_RETURN(uint32_t num_instances, r.U32());
  RETURN_IF_ERROR(r.CheckCount(num_instances, /*name+arity+counts*/ 16));
  for (uint32_t i = 0; i < num_instances; ++i) {
    ASSIGN_OR_RETURN(std::string relation_name, r.Str());
    ASSIGN_OR_RETURN(uint32_t arity, r.U32());
    if (arity < 1) {
      return Status::InvalidArgument("wire: instance with arity 0");
    }
    RETURN_IF_ERROR(r.CheckCount(arity, 4));
    std::vector<std::string> names;
    names.reserve(arity);
    for (uint32_t a = 0; a < arity; ++a) {
      ASSIGN_OR_RETURN(std::string name, r.Str());
      names.push_back(std::move(name));
    }
    // names[0] is the EID; Schema::Make re-prepends it.
    std::string eid_name = names[0];
    names.erase(names.begin());
    ASSIGN_OR_RETURN(Schema schema,
                     Schema::Make(relation_name, std::move(names),
                                  std::move(eid_name)));
    Relation rel(std::move(schema));
    ASSIGN_OR_RETURN(uint32_t num_tuples, r.U32());
    RETURN_IF_ERROR(r.CheckCount(num_tuples, arity));
    for (uint32_t t = 0; t < num_tuples; ++t) {
      std::vector<Value> values;
      values.reserve(arity);
      for (uint32_t a = 0; a < arity; ++a) {
        ASSIGN_OR_RETURN(Value v, r.Val());
        values.push_back(std::move(v));
      }
      RETURN_IF_ERROR(rel.Append(Tuple(std::move(values))).status());
    }
    core::TemporalInstance inst(std::move(rel));
    for (uint32_t a = 1; a < arity; ++a) {
      ASSIGN_OR_RETURN(uint32_t npairs, r.U32());
      RETURN_IF_ERROR(r.CheckCount(npairs, 8));
      for (uint32_t k = 0; k < npairs; ++k) {
        ASSIGN_OR_RETURN(uint32_t u, r.U32());
        ASSIGN_OR_RETURN(uint32_t v, r.U32());
        if (u >= num_tuples || v >= num_tuples) {
          return Status::InvalidArgument("wire: order pair tuple out of "
                                         "range");
        }
        // Re-validates same-entity and acyclicity; a corrupt pair is
        // rejected here rather than installed.
        RETURN_IF_ERROR(inst.AddOrder(static_cast<AttrIndex>(a),
                                      static_cast<TupleId>(u),
                                      static_cast<TupleId>(v)));
      }
    }
    const Schema inst_schema = inst.schema();
    RETURN_IF_ERROR(spec.AddInstance(std::move(inst)));
    ASSIGN_OR_RETURN(uint32_t num_constraints, r.U32());
    RETURN_IF_ERROR(r.CheckCount(num_constraints, /*counts+conclusion*/ 24));
    for (uint32_t k = 0; k < num_constraints; ++k) {
      ASSIGN_OR_RETURN(constraints::DenialConstraint dc,
                       GetConstraint(&r, inst_schema));
      RETURN_IF_ERROR(spec.AddConstraint(std::move(dc)));
    }
  }
  ASSIGN_OR_RETURN(uint32_t num_edges, r.U32());
  RETURN_IF_ERROR(r.CheckCount(num_edges, 20));
  for (uint32_t e = 0; e < num_edges; ++e) {
    copy::CopySignature sig;
    ASSIGN_OR_RETURN(sig.target_relation, r.Str());
    ASSIGN_OR_RETURN(uint32_t ntarget, r.U32());
    RETURN_IF_ERROR(r.CheckCount(ntarget, 4));
    for (uint32_t k = 0; k < ntarget; ++k) {
      ASSIGN_OR_RETURN(std::string a, r.Str());
      sig.target_attrs.push_back(std::move(a));
    }
    ASSIGN_OR_RETURN(sig.source_relation, r.Str());
    ASSIGN_OR_RETURN(uint32_t nsource, r.U32());
    RETURN_IF_ERROR(r.CheckCount(nsource, 4));
    for (uint32_t k = 0; k < nsource; ++k) {
      ASSIGN_OR_RETURN(std::string a, r.Str());
      sig.source_attrs.push_back(std::move(a));
    }
    copy::CopyFunction fn(std::move(sig));
    ASSIGN_OR_RETURN(uint32_t nmapped, r.U32());
    RETURN_IF_ERROR(r.CheckCount(nmapped, 8));
    for (uint32_t k = 0; k < nmapped; ++k) {
      ASSIGN_OR_RETURN(uint32_t t, r.U32());
      ASSIGN_OR_RETURN(uint32_t s, r.U32());
      RETURN_IF_ERROR(fn.Map(static_cast<TupleId>(t),
                             static_cast<TupleId>(s)));
    }
    // AddCopyFunction re-validates the signature resolution and the
    // copying condition against the parsed data.
    RETURN_IF_ERROR(spec.AddCopyFunction(std::move(fn)));
  }
  RETURN_IF_ERROR(r.ExpectEnd());
  return spec;
}

void AppendTupleEdits(const std::vector<core::TupleEdit>& edits,
                      std::string* out) {
  Writer w;
  w.Magic(kEditsMagic, kEditsVersion);
  w.U32(static_cast<uint32_t>(edits.size()));
  for (const core::TupleEdit& e : edits) {
    w.I32(e.instance);
    w.I32(e.tuple);
    w.I32(e.attr);
    w.Val(e.new_value);
  }
  out->append(w.data());
}

std::string SerializeTupleEdits(const std::vector<core::TupleEdit>& edits) {
  std::string out;
  AppendTupleEdits(edits, &out);
  return out;
}

Result<std::vector<core::TupleEdit>> ParseTupleEdits(std::string_view bytes) {
  Reader r(bytes);
  RETURN_IF_ERROR(r.Magic(kEditsMagic, kEditsVersion));
  ASSIGN_OR_RETURN(uint32_t count, r.U32());
  RETURN_IF_ERROR(r.CheckCount(count, /*3 ints + value tag*/ 13));
  std::vector<core::TupleEdit> edits;
  edits.reserve(count);
  for (uint32_t k = 0; k < count; ++k) {
    core::TupleEdit e;
    ASSIGN_OR_RETURN(e.instance, r.I32());
    ASSIGN_OR_RETURN(e.tuple, r.I32());
    ASSIGN_OR_RETURN(e.attr, r.I32());
    ASSIGN_OR_RETURN(e.new_value, r.Val());
    edits.push_back(std::move(e));
  }
  RETURN_IF_ERROR(r.ExpectEnd());
  return edits;
}

}  // namespace currency::wire
