// Wire formats for the core state objects: a whole Specification
// ("CSPC" version 1) and a tuple-edit batch ("CEDT" version 1).
//
// These are the payloads of the durable command log (src/wal via
// src/serve/command.h) and the intended body format of a future TCP
// front-end.  Round-trip exactness is a contract, not an aspiration:
//
//   Parse(Serialize(spec)) adds the same instances, tuples, initial
//   currency-order pairs, denial constraints and copy functions through
//   the same validated Specification builders, and
//   Serialize(Parse(bytes)) == bytes for every valid buffer,
//
// which the golden tests in tests/wire_test.cc pin byte-for-byte.  The
// determinism carrying that contract: instance order is registration
// order, PartialOrder::Pairs() enumerates the (closed) order relation
// lexicographically, copy mappings are sorted std::maps, doubles are
// serialized as IEEE bit patterns, and DenialConstraint::Make stores its
// pieces verbatim.
//
// Layout notes (version 1):
//   * Currency orders are serialized as their full transitive closure;
//     re-adding every pair reproduces the closure exactly (AddOrder
//     re-validates same-entity and acyclicity, so a corrupt buffer is
//     rejected, never installed).
//   * Denial constraints are serialized STRUCTURALLY (operands, compare
//     ops, order atoms), not as DSL text: constants round-trip by bit
//     pattern where text could lose double precision.
//   * What is rebuilt, not stored: entity-group caches, decompositions,
//     fingerprints — all derived state.

#ifndef CURRENCY_SRC_WIRE_SPEC_H_
#define CURRENCY_SRC_WIRE_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"

namespace currency::wire {

/// Appends the canonical "CSPC" v1 encoding of `spec` to `out`.
void AppendSpecification(const core::Specification& spec, std::string* out);

/// The canonical encoding as a fresh string.
std::string SerializeSpecification(const core::Specification& spec);

/// Parses a whole "CSPC" buffer back into a validated Specification.
/// Trailing bytes, bad magic, version skew, truncation and semantically
/// invalid content (cyclic orders, failing copy conditions) all fail with
/// InvalidArgument; nothing is partially applied anywhere.
Result<core::Specification> ParseSpecification(std::string_view bytes);

/// Appends the canonical "CEDT" v1 encoding of an edit batch to `out`.
void AppendTupleEdits(const std::vector<core::TupleEdit>& edits,
                      std::string* out);

std::string SerializeTupleEdits(const std::vector<core::TupleEdit>& edits);

/// Parses a whole "CEDT" buffer.  Range validity against a concrete
/// specification is NOT checked here — Specification::ApplyTupleEdits
/// owns that — only structural well-formedness.
Result<std::vector<core::TupleEdit>> ParseTupleEdits(std::string_view bytes);

}  // namespace currency::wire

#endif  // CURRENCY_SRC_WIRE_SPEC_H_
