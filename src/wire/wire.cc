#include "src/wire/wire.h"

#include <cstring>

namespace currency::wire {

namespace {

/// Hex rendering for magic-mismatch diagnostics (magic bytes may be
/// arbitrary garbage on corrupt input; never print them raw).
std::string HexTag(const char* tag) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (int i = 0; i < 4; ++i) {
    unsigned char b = static_cast<unsigned char>(tag[i]);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 15]);
  }
  return out;
}

}  // namespace

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::F64(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void Writer::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt:
      I64(v.AsInt());
      break;
    case ValueKind::kDouble:
      F64(v.AsDouble());
      break;
    case ValueKind::kString:
      Str(v.AsString());
      break;
    case ValueKind::kBool:
      U8(v.AsBool() ? 1 : 0);
      break;
  }
}

void Writer::Magic(const char tag[4], uint32_t version) {
  out_.append(tag, 4);
  U32(version);
}

Status Reader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        "wire: truncated buffer (need " + std::to_string(n) + " bytes at " +
        std::to_string(pos_) + " of " + std::to_string(data_.size()) + ")");
  }
  return Status::OK();
}

Result<uint8_t> Reader::U8() {
  RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Reader::U32() {
  RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> Reader::I32() {
  ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> Reader::I64() {
  ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::F64() {
  ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<std::string> Reader::Str() {
  ASSIGN_OR_RETURN(uint32_t len, U32());
  RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> Reader::Val() {
  ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kInt: {
      ASSIGN_OR_RETURN(int64_t v, I64());
      return Value(v);
    }
    case ValueKind::kDouble: {
      ASSIGN_OR_RETURN(double v, F64());
      return Value(v);
    }
    case ValueKind::kString: {
      ASSIGN_OR_RETURN(std::string v, Str());
      return Value(std::move(v));
    }
    case ValueKind::kBool: {
      ASSIGN_OR_RETURN(uint8_t v, U8());
      return Value::Bool(v != 0);
    }
  }
  return Status::InvalidArgument("wire: unknown Value kind tag " +
                                 std::to_string(tag));
}

Status Reader::Magic(const char tag[4], uint32_t version) {
  RETURN_IF_ERROR(Need(4));
  if (std::memcmp(data_.data() + pos_, tag, 4) != 0) {
    std::string got(data_.substr(pos_, 4));
    return Status::InvalidArgument(
        "wire: bad magic: want '" + std::string(tag, 4) + "', got 0x" +
        HexTag(got.data()));
  }
  pos_ += 4;
  ASSIGN_OR_RETURN(uint32_t got_version, U32());
  if (got_version != version) {
    return Status::InvalidArgument(
        "wire: '" + std::string(tag, 4) + "' format version mismatch: this "
        "build reads version " + std::to_string(version) + ", buffer is "
        "version " + std::to_string(got_version) +
        " — bump the format version and add a migration path before "
        "changing the layout");
  }
  return Status::OK();
}

Status Reader::CheckCount(uint64_t count, uint64_t min_bytes_per_item) const {
  if (min_bytes_per_item != 0 && count > remaining() / min_bytes_per_item) {
    return Status::InvalidArgument(
        "wire: corrupt count " + std::to_string(count) + " (only " +
        std::to_string(remaining()) + " bytes remain)");
  }
  return Status::OK();
}

Status Reader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument(
        "wire: " + std::to_string(remaining()) + " trailing bytes after "
        "message end");
  }
  return Status::OK();
}

}  // namespace currency::wire
