// currency::wire — the canonical binary encoding layer of the durability
// stack (and, deliberately, the payload format a future TCP front-end
// will speak; see docs/ARCHITECTURE.md §8).
//
// This header holds the primitives: a Writer that appends fixed-width
// little-endian scalars, length-prefixed strings and tagged Values to a
// byte buffer, and a Reader that consumes them with full bounds checking
// — a truncated or corrupt buffer yields InvalidArgument, never a crash
// or an over-read.  Every top-level message built on these primitives
// (src/wire/spec.h, src/serve/command.h) starts with a four-byte magic
// tag plus a u32 format version, so accidental format breaks fail loudly
// with a "bump the version" instruction instead of misparsing.
//
// Encoding rules (format version contracts depend on these staying
// fixed):
//   * u8/u16/u32/u64 are little-endian, fixed width; i32/i64 are their
//     two's-complement reinterpretations; f64 is the IEEE-754 bit
//     pattern as u64 — doubles round-trip EXACTLY, including NaN bits.
//   * Str is u32 byte length + raw bytes (no terminator).
//   * Val is a u8 ValueKind tag followed by the kind's payload (nothing
//     for Null, i64, f64, Str, or u8 for Bool).
//
// Writers are deterministic: serializing equal content produces equal
// bytes, which is what lets the recovery tests compare specifications by
// their serialized form and the golden tests pin the format.

#ifndef CURRENCY_SRC_WIRE_WIRE_H_
#define CURRENCY_SRC_WIRE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/value.h"

namespace currency::wire {

/// Appends primitives to an owned byte buffer.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern; exact round-trip for every double incl. NaN.
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(std::string_view s);
  /// u8 kind tag + payload.
  void Val(const Value& v);
  /// Four magic bytes + u32 version — the standard message header.
  void Magic(const char tag[4], uint32_t version);
  /// Raw bytes, no length prefix (for pre-framed nested blobs use Str).
  void Raw(std::string_view bytes) { out_.append(bytes); }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Consumes primitives from a borrowed byte buffer; every accessor is
/// bounds-checked and returns InvalidArgument on truncation.  The caller
/// keeps the underlying bytes alive for the Reader's lifetime.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();
  Result<Value> Val();

  /// Checks the four magic bytes and that the version is exactly
  /// `version`; the error message names both sides so format breaks are
  /// self-diagnosing.
  Status Magic(const char tag[4], uint32_t version);

  /// Guards count-prefixed loops against corrupt counts: fails unless
  /// `count * min_bytes_per_item` more bytes remain, so a flipped length
  /// byte cannot drive a multi-gigabyte allocation or a long spin.
  Status CheckCount(uint64_t count, uint64_t min_bytes_per_item) const;

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// Fails unless the buffer was consumed exactly (trailing garbage is a
  /// format error for every top-level message).
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace currency::wire

#endif  // CURRENCY_SRC_WIRE_WIRE_H_
