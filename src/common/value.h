// Value: the dynamically typed cell value used throughout the library.
//
// The paper's data model is untyped first-order logic with built-in
// predicates over particular domains (Section 2).  We support the domains
// exercised by the paper's examples and proofs: integers, doubles, strings
// and booleans, plus Null for absent information.

#ifndef CURRENCY_SRC_COMMON_VALUE_H_
#define CURRENCY_SRC_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace currency {

/// Discriminator for the dynamic type of a Value.
enum class ValueKind { kNull = 0, kInt, kDouble, kString, kBool };

/// A dynamically typed constant: Null, Int64, Double, String or Bool.
///
/// Values form a total order (used for deterministic output and for map
/// keys): Null < Bool < Int/Double (numeric, compared by value) < String.
/// Equality between Int and Double compares numerically, so Value(2) ==
/// Value(2.0); this matches SQL-style comparison semantics and keeps the
/// built-in predicates of denial constraints (">", "<", ...) natural.
class Value {
 public:
  /// Constructs the Null value.
  Value() : repr_(std::monostate{}) {}
  /// Constructs an integer value.
  Value(int64_t v) : repr_(v) {}  // NOLINT(runtime/explicit)
  Value(int v) : repr_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  /// Constructs a double value.
  Value(double v) : repr_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs a string value.
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)
  /// Constructs a boolean value.  (Tagged to avoid int/bool ambiguity.)
  static Value Bool(bool v) {
    Value out;
    out.repr_ = v;
    return out;
  }
  /// The Null value.
  static Value Null() { return Value(); }

  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_numeric() const {
    ValueKind k = kind();
    return k == ValueKind::kInt || k == ValueKind::kDouble;
  }

  /// Accessors; each requires the matching kind().
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }

  /// Numeric value as double (requires is_numeric()).
  double NumericValue() const;

  /// SQL-style equality: numerics compare by value across Int/Double;
  /// Null equals only Null; distinct kinds otherwise compare unequal.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for containers and deterministic rendering:
  /// Null < Bool < numeric < String, numerics interleaved by value.
  bool operator<(const Value& other) const;

  /// Renders the value for display ("null", "42", "3.5", "Smith", "true").
  std::string ToString() const;

  /// Hash consistent with operator== (numeric values hash by double).
  size_t Hash() const;

 private:
  /// Rank used by operator< to order values of different kinds.
  int KindRank() const;

  std::variant<std::monostate, int64_t, double, std::string, bool> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_VALUE_H_
