// Result<T>: a value or a Status, in the spirit of arrow::Result.
//
// The error-handling half of currency::common (see status.h): all
// fallible public APIs in the library — parsers, specification
// validation, decision procedures — return Status or Result<T> rather
// than throwing.

#ifndef CURRENCY_SRC_COMMON_RESULT_H_
#define CURRENCY_SRC_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace currency {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed.  Accessing the value of a failed Result aborts, so
/// callers must test ok() (or use ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status.  Constructing from an OK
  /// status is a programming error and aborts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure Status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value.  Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Convenience accessors mirroring std::optional.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise assigns the value.  Usage:
///   ASSIGN_OR_RETURN(auto rel, BuildRelation(...));
#define ASSIGN_OR_RETURN(lhs, expr)                            \
  ASSIGN_OR_RETURN_IMPL(CURRENCY_CONCAT(_res_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                          \
  if (!tmp.ok()) return tmp.status();         \
  lhs = std::move(tmp).value()

#define CURRENCY_CONCAT_INNER(a, b) a##b
#define CURRENCY_CONCAT(a, b) CURRENCY_CONCAT_INNER(a, b)

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_RESULT_H_
