#include "src/common/lexer.h"

#include <cctype>
#include <cstdlib>

namespace currency {

Result<std::vector<Token>> LexText(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      t.kind = Tok::kIdent;
      t.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n && text[i + 1] != '>' &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.')) {
        if (text[j] == '.') is_double = true;
        ++j;
      }
      t.kind = Tok::kNumber;
      t.text = text.substr(i, j - i);
      t.value = is_double ? Value(std::strtod(t.text.c_str(), nullptr))
                          : Value(static_cast<int64_t>(
                                std::strtoll(t.text.c_str(), nullptr, 10)));
      i = j;
    } else if (c == '\'' || c == '"') {
      size_t j = i + 1;
      while (j < n && text[j] != c) ++j;
      if (j >= n) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      t.kind = Tok::kString;
      t.text = text.substr(i + 1, j - i - 1);
      t.value = Value(t.text);
      i = j + 1;
    } else if (c == '(') {
      t.kind = Tok::kLParen;
      ++i;
    } else if (c == ')') {
      t.kind = Tok::kRParen;
      ++i;
    } else if (c == '[') {
      t.kind = Tok::kLBracket;
      ++i;
    } else if (c == ']') {
      t.kind = Tok::kRBracket;
      ++i;
    } else if (c == ',') {
      t.kind = Tok::kComma;
      ++i;
    } else if (c == '.') {
      t.kind = Tok::kDot;
      ++i;
    } else if (c == ':') {
      if (i + 1 < n && text[i + 1] == '=') {
        t.kind = Tok::kAssign;
        i += 2;
      } else {
        t.kind = Tok::kColon;
        ++i;
      }
    } else if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      t.kind = Tok::kArrow;
      i += 2;
    } else if (c == '=') {
      t.kind = Tok::kCmp;
      t.cmp = CmpOp::kEq;
      ++i;
    } else if (c == '!' && i + 1 < n && text[i + 1] == '=') {
      t.kind = Tok::kCmp;
      t.cmp = CmpOp::kNe;
      i += 2;
    } else if (c == '<') {
      t.kind = Tok::kCmp;
      if (i + 1 < n && text[i + 1] == '=') {
        t.cmp = CmpOp::kLe;
        i += 2;
      } else {
        t.cmp = CmpOp::kLt;
        ++i;
      }
    } else if (c == '>') {
      t.kind = Tok::kCmp;
      if (i + 1 < n && text[i + 1] == '=') {
        t.cmp = CmpOp::kGe;
        i += 2;
      } else {
        t.cmp = CmpOp::kGt;
        ++i;
      }
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = Tok::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

bool TokenIsKeyword(const Token& t, const char* kw) {
  if (t.kind != Tok::kIdent) return false;
  size_t len = 0;
  while (kw[len] != '\0') ++len;
  if (t.text.size() != len) return false;
  for (size_t i = 0; i < len; ++i) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != kw[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace currency
