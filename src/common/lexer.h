// A small shared lexer for the two text DSLs in this library: FO queries
// (Section 3, src/query/parser.h) and denial constraints (Section 2.1,
// src/constraints/parser.h).  Produces identifiers, numeric/string
// literals, punctuation and comparison operators.

#ifndef CURRENCY_SRC_COMMON_LEXER_H_
#define CURRENCY_SRC_COMMON_LEXER_H_

#include <string>
#include <vector>

#include "src/common/cmp.h"
#include "src/common/result.h"
#include "src/common/value.h"

namespace currency {

/// Token categories.
enum class Tok {
  kIdent,
  kNumber,
  kString,
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kColon,     // :
  kAssign,    // :=
  kDot,       // .
  kArrow,     // ->
  kCmp,       // = != < <= > >=
  kEnd,
};

/// A lexed token.  `value` is set for numbers and strings; `cmp` for kCmp.
struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  Value value;
  CmpOp cmp = CmpOp::kEq;
  size_t pos = 0;
};

/// Tokenizes `text`; the result always ends with a kEnd token.
Result<std::vector<Token>> LexText(const std::string& text);

/// Case-insensitive keyword test (`kw` must be uppercase).
bool TokenIsKeyword(const Token& t, const char* kw);

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_LEXER_H_
