// Comparison operators shared by the query language and the built-in
// predicates of denial constraints (Section 2: "possibly other built-in
// predicates defined on particular domains").

#ifndef CURRENCY_SRC_COMMON_CMP_H_
#define CURRENCY_SRC_COMMON_CMP_H_

#include <string>

#include "src/common/value.h"

namespace currency {

/// Binary comparison operator.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// "=", "!=", "<", "<=", ">", ">=".
inline const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

/// Evaluates `lhs op rhs`.  Equality follows Value::operator== (numeric
/// across Int/Double).  Ordered comparisons require both operands numeric,
/// both strings, or both bools; mixed-kind ordered comparisons are false.
inline bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    default:
      break;
  }
  bool lt, gt;
  if (lhs.is_numeric() && rhs.is_numeric()) {
    lt = lhs.NumericValue() < rhs.NumericValue();
    gt = lhs.NumericValue() > rhs.NumericValue();
  } else if (lhs.kind() == ValueKind::kString &&
             rhs.kind() == ValueKind::kString) {
    lt = lhs.AsString() < rhs.AsString();
    gt = lhs.AsString() > rhs.AsString();
  } else if (lhs.kind() == ValueKind::kBool &&
             rhs.kind() == ValueKind::kBool) {
    lt = lhs.AsBool() < rhs.AsBool();
    gt = lhs.AsBool() > rhs.AsBool();
  } else {
    return false;
  }
  switch (op) {
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return !gt;
    case CmpOp::kGt:
      return gt;
    case CmpOp::kGe:
      return !lt;
    default:
      return false;
  }
}

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_CMP_H_
