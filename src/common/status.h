// Status: error signalling without exceptions (Arrow / RocksDB idiom).
//
// All fallible public APIs in this library return Status or Result<T>
// (see result.h).  Exceptions are not used, following the Google C++
// style guide as adopted by Arrow and RocksDB.

#ifndef CURRENCY_SRC_COMMON_STATUS_H_
#define CURRENCY_SRC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace currency {

/// Machine-readable failure category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied malformed input (bad schema, parse error, ...).
  kNotFound,          ///< Named attribute / relation / entity does not exist.
  kFailedPrecondition,///< Operation requires state the object is not in.
  kInconsistent,      ///< A specification admits no consistent completion.
  kUnsupported,       ///< Feature outside the implemented fragment.
  kResourceExhausted, ///< A solver exceeded its configured budget.
  kInternal,          ///< Invariant violation: a bug in this library.
};

/// Returns the canonical spelling of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable (ok ? nothing : code+message) result of an operation.
///
/// The OK status carries no allocation.  Error statuses carry a category
/// and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The failure category (kOk when ok()).
  StatusCode code() const { return code_; }
  /// The human-readable message ("" when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.  Usage:
///   RETURN_IF_ERROR(DoThing());
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::currency::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_STATUS_H_
