// Small string utilities shared across the library (no dependencies).
// Part of currency::common, the paper-agnostic substrate under all nine
// modules; nothing here encodes paper semantics.

#ifndef CURRENCY_SRC_COMMON_STRINGS_H_
#define CURRENCY_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace currency {

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Case-sensitive identifier check: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

}  // namespace currency

#endif  // CURRENCY_SRC_COMMON_STRINGS_H_
