#include "src/common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace currency {

ValueKind Value::kind() const {
  switch (repr_.index()) {
    case 0:
      return ValueKind::kNull;
    case 1:
      return ValueKind::kInt;
    case 2:
      return ValueKind::kDouble;
    case 3:
      return ValueKind::kString;
    case 4:
      return ValueKind::kBool;
  }
  return ValueKind::kNull;
}

double Value::NumericValue() const {
  if (kind() == ValueKind::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return NumericValue() == other.NumericValue();
  }
  return repr_ == other.repr_;
}

int Value::KindRank() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 2;
    case ValueKind::kString:
      return 3;
  }
  return 4;
}

bool Value::operator<(const Value& other) const {
  int ra = KindRank();
  int rb = other.KindRank();
  if (ra != rb) return ra < rb;
  switch (kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBool:
      return AsBool() < other.AsBool();
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      double a = NumericValue();
      double b = other.NumericValue();
      if (a != b) return a < b;
      // Tie-break Int before Double so the order is strict-weak and total.
      return kind() < other.kind();
    }
    case ValueKind::kString:
      return AsString() < other.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueKind::kString:
      return AsString();
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return std::hash<double>()(NumericValue());
    case ValueKind::kString:
      return std::hash<std::string>()(AsString());
    case ValueKind::kBool:
      return std::hash<bool>()(AsBool()) ^ 0x517cc1b727220a95ULL;
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace currency
