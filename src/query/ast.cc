#include "src/query/ast.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace currency::query {

std::string Term::ToString() const {
  if (is_var()) return var;
  if (constant.kind() == ValueKind::kString) return "'" + constant.ToString() + "'";
  return constant.ToString();
}

FormulaPtr Formula::Atom(std::string relation, std::vector<Term> args) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAtom;
  f->relation_ = std::move(relation);
  f->args_ = std::move(args);
  return f;
}

FormulaPtr Formula::Compare(CmpOp op, Term lhs, Term rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kCompare;
  f->cmp_op_ = op;
  f->lhs_ = std::move(lhs);
  f->rhs_ = std::move(rhs);
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kNot;
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, FormulaPtr body) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kExists;
  f->vars_ = std::move(vars);
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, FormulaPtr body) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kForall;
  f->children_.push_back(std::move(body));
  f->vars_ = std::move(vars);
  return f;
}

namespace {

void CollectFree(const Formula& f, std::set<std::string>* bound,
                 std::vector<std::string>* out, std::set<std::string>* seen) {
  auto add_term = [&](const Term& t) {
    if (t.is_var() && !bound->count(t.var) && !seen->count(t.var)) {
      seen->insert(t.var);
      out->push_back(t.var);
    }
  };
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      for (const Term& t : f.args()) add_term(t);
      break;
    case Formula::Kind::kCompare:
      add_term(f.lhs());
      add_term(f.rhs());
      break;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const auto& c : f.children()) CollectFree(*c, bound, out, seen);
      break;
    case Formula::Kind::kNot:
      CollectFree(*f.child(), bound, out, seen);
      break;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<std::string> newly;
      for (const std::string& v : f.quantified_vars()) {
        if (bound->insert(v).second) newly.push_back(v);
      }
      CollectFree(*f.child(), bound, out, seen);
      for (const std::string& v : newly) bound->erase(v);
      break;
    }
  }
}

void CollectConstants(const Formula& f, std::vector<Value>* out) {
  auto add_term = [&](const Term& t) {
    if (!t.is_var()) out->push_back(t.constant);
  };
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      for (const Term& t : f.args()) add_term(t);
      break;
    case Formula::Kind::kCompare:
      add_term(f.lhs());
      add_term(f.rhs());
      break;
    default:
      for (const auto& c : f.children()) CollectConstants(*c, out);
      break;
  }
}

void CollectRelations(const Formula& f, std::vector<std::string>* out) {
  if (f.kind() == Formula::Kind::kAtom) {
    if (std::find(out->begin(), out->end(), f.relation()) == out->end()) {
      out->push_back(f.relation());
    }
    return;
  }
  for (const auto& c : f.children()) CollectRelations(*c, out);
}

}  // namespace

std::vector<std::string> Formula::FreeVariables() const {
  std::set<std::string> bound, seen;
  std::vector<std::string> out;
  CollectFree(*this, &bound, &out, &seen);
  return out;
}

std::vector<Value> Formula::Constants() const {
  std::vector<Value> out;
  CollectConstants(*this, &out);
  return out;
}

std::vector<std::string> Formula::Relations() const {
  std::vector<std::string> out;
  CollectRelations(*this, &out);
  return out;
}

std::string Formula::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kAtom: {
      os << relation_ << "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) os << ", ";
        os << args_[i].ToString();
      }
      os << ")";
      break;
    }
    case Kind::kCompare:
      os << lhs_.ToString() << " " << CmpOpToString(cmp_op_) << " "
         << rhs_.ToString();
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = (kind_ == Kind::kAnd) ? " AND " : " OR ";
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << sep;
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kNot:
      os << "NOT " << children_[0]->ToString();
      break;
    case Kind::kExists:
    case Kind::kForall: {
      os << (kind_ == Kind::kExists ? "EXISTS " : "FORALL ");
      for (size_t i = 0; i < vars_.size(); ++i) {
        if (i) os << ", ";
        os << vars_[i];
      }
      os << ": " << children_[0]->ToString();
      break;
    }
  }
  return os.str();
}

std::string Query::ToString() const {
  std::ostringstream os;
  os << name << "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i) os << ", ";
    os << head[i];
  }
  os << ") := " << (body ? body->ToString() : "<null>");
  return os.str();
}

}  // namespace currency::query
