// First-order query AST (Section 3 of the paper).
//
// Queries are posed against *normal* instances (current instances LST(Dc))
// and never mention currency orders.  The AST covers full FO — atoms,
// comparisons, ∧, ∨, ¬, ∃, ∀ — and the classifier (classify.h) identifies
// the fragments the paper studies: CQ, UCQ, ∃FO+, FO and SP.

#ifndef CURRENCY_SRC_QUERY_AST_H_
#define CURRENCY_SRC_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/cmp.h"
#include "src/common/value.h"

namespace currency::query {

/// A term: either a variable (by name) or a constant.
struct Term {
  enum class Kind { kVar, kConst };
  Kind kind = Kind::kVar;
  std::string var;    ///< valid iff kind == kVar
  Value constant;     ///< valid iff kind == kConst

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }
  bool is_var() const { return kind == Kind::kVar; }
  std::string ToString() const;
};

class Formula;
/// Formulas are immutable and shared; sub-formulas may be reused freely.
using FormulaPtr = std::shared_ptr<const Formula>;

/// An FO formula node.
class Formula {
 public:
  enum class Kind { kAtom, kCompare, kAnd, kOr, kNot, kExists, kForall };

  Kind kind() const { return kind_; }

  // --- kAtom ---
  const std::string& relation() const { return relation_; }
  const std::vector<Term>& args() const { return args_; }

  // --- kCompare ---
  CmpOp cmp_op() const { return cmp_op_; }
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }

  // --- kAnd / kOr ---
  const std::vector<FormulaPtr>& children() const { return children_; }

  // --- kNot / kExists / kForall ---
  const FormulaPtr& child() const { return children_[0]; }

  // --- kExists / kForall ---
  const std::vector<std::string>& quantified_vars() const { return vars_; }

  /// Factories.
  static FormulaPtr Atom(std::string relation, std::vector<Term> args);
  static FormulaPtr Compare(CmpOp op, Term lhs, Term rhs);
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  static FormulaPtr Not(FormulaPtr child);
  static FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);

  /// Free variables of the formula, in first-occurrence order.
  std::vector<std::string> FreeVariables() const;

  /// All constants appearing in the formula (for active-domain semantics).
  std::vector<Value> Constants() const;

  /// Relation names mentioned by atoms.
  std::vector<std::string> Relations() const;

  std::string ToString() const;

 private:
  Formula() = default;

  Kind kind_ = Kind::kAtom;
  std::string relation_;
  std::vector<Term> args_;
  CmpOp cmp_op_ = CmpOp::kEq;
  Term lhs_, rhs_;
  std::vector<FormulaPtr> children_;
  std::vector<std::string> vars_;
};

/// A named query: head variables (the output schema) plus an FO body.
/// Every head variable must occur free in the body.
struct Query {
  std::string name;
  std::vector<std::string> head;
  FormulaPtr body;

  /// "Q(x, y) := <body>".
  std::string ToString() const;
};

}  // namespace currency::query

#endif  // CURRENCY_SRC_QUERY_AST_H_
