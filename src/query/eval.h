// Query evaluation over normal instances.
//
// Two engines share one entry point:
//   * a backtracking-join engine for UCQ-shaped queries (atom-at-a-time
//     unification, used by the benchmark workloads where instances grow);
//   * an active-domain recursive evaluator for full FO (quantifiers range
//     over the active domain of the database plus the query's constants,
//     the standard finite-model semantics).
//
// Queries never see currency orders: per Section 2 they are "posed on
// normal instances ... without worrying about currency orders".

#ifndef CURRENCY_SRC_QUERY_EVAL_H_
#define CURRENCY_SRC_QUERY_EVAL_H_

#include <map>
#include <set>
#include <string>

#include "src/common/result.h"
#include "src/query/ast.h"
#include "src/relational/relation.h"

namespace currency::query {

/// A database: relation name -> instance.  Pointers are borrowed and must
/// outlive evaluation.
using Database = std::map<std::string, const Relation*>;

/// Evaluates `q` over `db`, returning the set of head-variable bindings
/// (each a Tuple of |head| values; a Boolean query yields the empty tuple
/// iff it holds).  Fails on unknown relations, arity mismatches, or bodies
/// whose head variables cannot be enumerated (empty database with naive
/// fallback is fine: active domain is then just the query constants).
Result<std::set<Tuple>> EvalQuery(const Query& q, const Database& db);

/// Evaluates a closed formula (no free variables) over `db`.
Result<bool> EvalClosedFormula(const FormulaPtr& formula, const Database& db);

/// One row read by a query derivation: relation name plus the tuple's
/// index in that relation.
struct SupportRow {
  std::string relation;
  int row = -1;

  bool operator<(const SupportRow& o) const {
    return relation != o.relation ? relation < o.relation : row < o.row;
  }
  bool operator==(const SupportRow& o) const {
    return relation == o.relation && row == o.row;
  }
};

/// Evaluates a UCQ-shaped query and returns, for each answer tuple, ONE
/// witness derivation: the set of rows whose cells the join read.  Any
/// database agreeing with `db` on those rows produces the same answer
/// tuple — the property the certain-answer solver's conflict-driven
/// blocking relies on (src/core/ccqa.cc).  Fails with Unsupported for
/// bodies outside the UCQ fragment (callers fall back to EvalQuery).
Result<std::map<Tuple, std::vector<SupportRow>>> EvalQueryWithSupport(
    const Query& q, const Database& db);

}  // namespace currency::query

#endif  // CURRENCY_SRC_QUERY_EVAL_H_
