#include "src/query/parser.h"

#include "src/common/lexer.h"

namespace currency::query {

namespace {

bool IsAnyKeyword(const Token& t) {
  return TokenIsKeyword(t, "AND") || TokenIsKeyword(t, "OR") ||
         TokenIsKeyword(t, "NOT") || TokenIsKeyword(t, "EXISTS") ||
         TokenIsKeyword(t, "FORALL");
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQueryTop() {
    Query q;
    if (Peek().kind != Tok::kIdent || IsAnyKeyword(Peek())) {
      return Err("expected query name");
    }
    q.name = Next().text;
    RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    if (Peek().kind != Tok::kRParen) {
      while (true) {
        if (Peek().kind != Tok::kIdent || IsAnyKeyword(Peek())) {
          return Err("expected head variable");
        }
        q.head.push_back(Next().text);
        if (Peek().kind == Tok::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    RETURN_IF_ERROR(Expect(Tok::kAssign, "':='"));
    ASSIGN_OR_RETURN(q.body, ParseOr());
    if (Peek().kind != Tok::kEnd) return Err("trailing input");
    // Head variables must be free in the body.
    auto free = q.body->FreeVariables();
    for (const auto& h : q.head) {
      bool found = false;
      for (const auto& f : free) {
        if (f == h) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("head variable '" + h +
                                       "' is not free in the body");
      }
    }
    return q;
  }

  Result<FormulaPtr> ParseFormulaTop() {
    ASSIGN_OR_RETURN(FormulaPtr f, ParseOr());
    if (Peek().kind != Tok::kEnd) return Err("trailing input");
    return f;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Next() { return tokens_[pos_++]; }

  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Next();
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Peek().pos));
  }

  Result<FormulaPtr> ParseOr() {
    ASSIGN_OR_RETURN(FormulaPtr first, ParseAnd());
    std::vector<FormulaPtr> parts{first};
    while (TokenIsKeyword(Peek(), "OR")) {
      Next();
      ASSIGN_OR_RETURN(FormulaPtr next, ParseAnd());
      parts.push_back(next);
    }
    if (parts.size() == 1) return parts[0];
    return Formula::Or(std::move(parts));
  }

  Result<FormulaPtr> ParseAnd() {
    ASSIGN_OR_RETURN(FormulaPtr first, ParseUnary());
    std::vector<FormulaPtr> parts{first};
    while (TokenIsKeyword(Peek(), "AND")) {
      Next();
      ASSIGN_OR_RETURN(FormulaPtr next, ParseUnary());
      parts.push_back(next);
    }
    if (parts.size() == 1) return parts[0];
    return Formula::And(std::move(parts));
  }

  Result<FormulaPtr> ParseUnary() {
    if (TokenIsKeyword(Peek(), "NOT")) {
      Next();
      ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
      return Formula::Not(std::move(body));
    }
    if (TokenIsKeyword(Peek(), "EXISTS") || TokenIsKeyword(Peek(), "FORALL")) {
      bool exists = TokenIsKeyword(Peek(), "EXISTS");
      Next();
      std::vector<std::string> vars;
      while (true) {
        if (Peek().kind != Tok::kIdent || IsAnyKeyword(Peek())) {
          return Err("expected quantified variable");
        }
        vars.push_back(Next().text);
        if (Peek().kind == Tok::kComma) {
          Next();
          continue;
        }
        break;
      }
      RETURN_IF_ERROR(Expect(Tok::kColon, "':' after quantifier variables"));
      ASSIGN_OR_RETURN(FormulaPtr body, ParseOr());
      return exists ? Formula::Exists(std::move(vars), std::move(body))
                    : Formula::Forall(std::move(vars), std::move(body));
    }
    if (Peek().kind == Tok::kLParen) {
      Next();
      ASSIGN_OR_RETURN(FormulaPtr inner, ParseOr());
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    // Relation atom: IDENT '(' ... ')'.
    if (Peek().kind == Tok::kIdent && !IsAnyKeyword(Peek()) &&
        Peek(1).kind == Tok::kLParen) {
      std::string rel = Next().text;
      Next();  // '('
      std::vector<Term> args;
      if (Peek().kind != Tok::kRParen) {
        while (true) {
          ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(std::move(t));
          if (Peek().kind == Tok::kComma) {
            Next();
            continue;
          }
          break;
        }
      }
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return Formula::Atom(std::move(rel), std::move(args));
    }
    // Comparison: term CMP term.
    ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Peek().kind != Tok::kCmp) return Err("expected comparison operator");
    CmpOp op = Next().cmp;
    ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Formula::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == Tok::kIdent && !IsAnyKeyword(t)) {
      Next();
      return Term::Var(t.text);
    }
    if (t.kind == Tok::kNumber || t.kind == Tok::kString) {
      Next();
      return Term::Const(t.value);
    }
    return Status::InvalidArgument("expected term at position " +
                                   std::to_string(t.pos));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, LexText(text));
  Parser parser(std::move(tokens));
  return parser.ParseQueryTop();
}

Result<FormulaPtr> ParseFormula(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, LexText(text));
  Parser parser(std::move(tokens));
  return parser.ParseFormulaTop();
}

}  // namespace currency::query
