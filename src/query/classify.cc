#include "src/query/classify.h"

#include <algorithm>
#include <set>

namespace currency::query {

const char* QueryLanguageToString(QueryLanguage lang) {
  switch (lang) {
    case QueryLanguage::kCq:
      return "CQ";
    case QueryLanguage::kUcq:
      return "UCQ";
    case QueryLanguage::kExistsFoPlus:
      return "∃FO+";
    case QueryLanguage::kFo:
      return "FO";
  }
  return "?";
}

namespace {

bool IsCqShaped(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kCompare:
      return true;
    case Formula::Kind::kAnd:
      return std::all_of(f.children().begin(), f.children().end(),
                         [](const FormulaPtr& c) { return IsCqShaped(*c); });
    case Formula::Kind::kExists:
      return IsCqShaped(*f.child());
    default:
      return false;
  }
}

bool IsUcqShaped(const Formula& f) {
  if (IsCqShaped(f)) return true;
  if (f.kind() == Formula::Kind::kOr) {
    return std::all_of(f.children().begin(), f.children().end(),
                       [](const FormulaPtr& c) { return IsUcqShaped(*c); });
  }
  return false;
}

bool IsPositiveExistential(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kNot:
    case Formula::Kind::kForall:
      return false;
    case Formula::Kind::kAtom:
    case Formula::Kind::kCompare:
      return true;
    default:
      return std::all_of(
          f.children().begin(), f.children().end(),
          [](const FormulaPtr& c) { return IsPositiveExistential(*c); });
  }
}

/// Strips a (possibly repeated) ∃-prefix, returning the matrix.
const Formula* StripExists(const Formula* f) {
  while (f->kind() == Formula::Kind::kExists) f = f->child().get();
  return f;
}

/// Decomposes an SP matrix into (atom, compares); returns nullptr on shape
/// mismatch.
const Formula* SpAtomOf(const Formula* matrix,
                        std::vector<const Formula*>* compares) {
  const Formula* atom = nullptr;
  std::vector<const Formula*> stack{matrix};
  while (!stack.empty()) {
    const Formula* f = stack.back();
    stack.pop_back();
    switch (f->kind()) {
      case Formula::Kind::kAnd:
        for (const auto& c : f->children()) stack.push_back(c.get());
        break;
      case Formula::Kind::kAtom:
        if (atom != nullptr) return nullptr;  // joins are not SP
        atom = f;
        break;
      case Formula::Kind::kCompare:
        if (f->cmp_op() != CmpOp::kEq) return nullptr;
        compares->push_back(f);
        break;
      default:
        return nullptr;
    }
  }
  return atom;
}

}  // namespace

QueryLanguage Classify(const Query& q) {
  if (IsCqShaped(*q.body)) return QueryLanguage::kCq;
  if (IsUcqShaped(*q.body)) return QueryLanguage::kUcq;
  if (IsPositiveExistential(*q.body)) return QueryLanguage::kExistsFoPlus;
  return QueryLanguage::kFo;
}

bool IsSpQuery(const Query& q) {
  const Formula* matrix = StripExists(q.body.get());
  std::vector<const Formula*> compares;
  const Formula* atom = SpAtomOf(matrix, &compares);
  if (atom == nullptr) return false;
  // Atom arguments: pairwise distinct variables.
  std::set<std::string> atom_vars;
  for (const Term& t : atom->args()) {
    if (!t.is_var()) return false;
    if (!atom_vars.insert(t.var).second) return false;
  }
  // Head variables come from the atom.
  for (const std::string& h : q.head) {
    if (!atom_vars.count(h)) return false;
  }
  // Equality atoms only reference atom variables and constants.
  for (const Formula* c : compares) {
    for (const Term* t : {&c->lhs(), &c->rhs()}) {
      if (t->is_var() && !atom_vars.count(t->var)) return false;
    }
  }
  return true;
}

bool IsIdentityQuery(const Query& q) {
  if (q.body->kind() != Formula::Kind::kAtom) return false;
  const Formula& atom = *q.body;
  if (atom.args().size() != q.head.size()) return false;
  std::set<std::string> seen;
  for (size_t i = 0; i < q.head.size(); ++i) {
    const Term& t = atom.args()[i];
    if (!t.is_var() || t.var != q.head[i]) return false;
    if (!seen.insert(t.var).second) return false;
  }
  return true;
}

}  // namespace currency::query
