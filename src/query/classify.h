// Syntactic classification of queries into the fragments the paper's
// complexity results range over (Section 3): CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO, plus
// the SP fragment ("CQ without join": selection + projection on a single
// relation) used by the tractable cases of Section 6.

#ifndef CURRENCY_SRC_QUERY_CLASSIFY_H_
#define CURRENCY_SRC_QUERY_CLASSIFY_H_

#include "src/query/ast.h"

namespace currency::query {

/// The smallest fragment of the paper's hierarchy containing a query.
enum class QueryLanguage { kCq, kUcq, kExistsFoPlus, kFo };

/// Human-readable fragment name ("CQ", "UCQ", "∃FO+", "FO").
const char* QueryLanguageToString(QueryLanguage lang);

/// Classifies `q` into the smallest fragment that syntactically contains
/// it.  CQ: atoms, =/built-ins, ∧, ∃.  UCQ: disjunctions of CQs.  ∃FO+:
/// adds ∨ anywhere (no ¬/∀).  FO: everything else.
QueryLanguage Classify(const Query& q);

/// True iff `q` is an SP query (Section 3): Q(x) = ∃e,y (R(e,x,y) ∧ ψ)
/// with ψ a conjunction of equality atoms, a single relation atom whose
/// arguments are pairwise distinct variables, and every head variable
/// drawn from the atom.
bool IsSpQuery(const Query& q);

/// True iff `q` is an identity query: a single atom with distinct variable
/// arguments, the head listing exactly the atom's arguments (ψ = true).
bool IsIdentityQuery(const Query& q);

}  // namespace currency::query

#endif  // CURRENCY_SRC_QUERY_CLASSIFY_H_
