// Text syntax for queries, so the paper's Q1–Q4 read almost verbatim:
//
//   Q1(s) := EXISTS e, fn, ln, a, st: Emp(e, fn, ln, a, s, st) AND e = 'Mary'
//
// Grammar (keywords case-insensitive; identifiers case-sensitive):
//
//   query    := IDENT '(' [vars] ')' ':=' formula
//   formula  := or
//   or       := and (OR and)*
//   and      := unary (AND unary)*
//   unary    := NOT unary
//             | EXISTS vars ':' formula       (scope: maximal to the right)
//             | FORALL vars ':' formula
//             | '(' formula ')'
//             | IDENT '(' [terms] ')'          (relation atom)
//             | term cmp term                  (cmp: = != < <= > >=)
//   term     := IDENT | NUMBER | 'string' | "string"

#ifndef CURRENCY_SRC_QUERY_PARSER_H_
#define CURRENCY_SRC_QUERY_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/query/ast.h"

namespace currency::query {

/// Parses "Name(x, y) := <formula>".
Result<Query> ParseQuery(const std::string& text);

/// Parses a bare formula.
Result<FormulaPtr> ParseFormula(const std::string& text);

}  // namespace currency::query

#endif  // CURRENCY_SRC_QUERY_PARSER_H_
