#include "src/query/eval.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "src/query/classify.h"

namespace currency::query {

namespace {

using Env = std::unordered_map<std::string, Value>;

// ---------------------------------------------------------------------------
// Active-domain FO evaluator.
// ---------------------------------------------------------------------------

class FoEvaluator {
 public:
  FoEvaluator(const Database& db, std::vector<Value> adom)
      : db_(db), adom_(std::move(adom)) {}

  Result<bool> Eval(const Formula& f, Env* env) {
    switch (f.kind()) {
      case Formula::Kind::kAtom:
        return EvalAtom(f, env);
      case Formula::Kind::kCompare: {
        ASSIGN_OR_RETURN(Value lhs, Resolve(f.lhs(), *env));
        ASSIGN_OR_RETURN(Value rhs, Resolve(f.rhs(), *env));
        return EvalCmp(f.cmp_op(), lhs, rhs);
      }
      case Formula::Kind::kAnd:
        for (const auto& c : f.children()) {
          ASSIGN_OR_RETURN(bool v, Eval(*c, env));
          if (!v) return false;
        }
        return true;
      case Formula::Kind::kOr:
        for (const auto& c : f.children()) {
          ASSIGN_OR_RETURN(bool v, Eval(*c, env));
          if (v) return true;
        }
        return false;
      case Formula::Kind::kNot: {
        ASSIGN_OR_RETURN(bool v, Eval(*f.child(), env));
        return !v;
      }
      case Formula::Kind::kExists:
        return EvalQuantifier(f, env, /*exists=*/true, 0);
      case Formula::Kind::kForall:
        return EvalQuantifier(f, env, /*exists=*/false, 0);
    }
    return Status::Internal("unknown formula kind");
  }

 private:
  Result<bool> EvalAtom(const Formula& f, Env* env) {
    auto it = db_.find(f.relation());
    if (it == db_.end()) {
      return Status::NotFound("relation '" + f.relation() +
                              "' not in database");
    }
    const Relation& rel = *it->second;
    if (static_cast<int>(f.args().size()) != rel.schema().arity()) {
      return Status::InvalidArgument(
          "atom " + f.ToString() + " does not match arity of " +
          rel.schema().ToString());
    }
    std::vector<Value> resolved(f.args().size());
    for (size_t i = 0; i < f.args().size(); ++i) {
      ASSIGN_OR_RETURN(resolved[i], Resolve(f.args()[i], *env));
    }
    for (const Tuple& t : rel.tuples()) {
      bool match = true;
      for (size_t i = 0; i < resolved.size(); ++i) {
        if (!(t.at(static_cast<int>(i)) == resolved[i])) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  }

  Result<bool> EvalQuantifier(const Formula& f, Env* env, bool exists,
                              size_t var_index) {
    if (var_index == f.quantified_vars().size()) {
      return Eval(*f.child(), env);
    }
    const std::string& var = f.quantified_vars()[var_index];
    // Save any shadowed binding.
    auto shadowed = env->find(var);
    bool had = shadowed != env->end();
    Value saved = had ? shadowed->second : Value();
    for (const Value& v : adom_) {
      (*env)[var] = v;
      ASSIGN_OR_RETURN(bool r, EvalQuantifier(f, env, exists, var_index + 1));
      if (exists && r) {
        RestoreBinding(env, var, had, saved);
        return true;
      }
      if (!exists && !r) {
        RestoreBinding(env, var, had, saved);
        return false;
      }
    }
    RestoreBinding(env, var, had, saved);
    // Empty active domain: ∃ is false, ∀ is true.
    return !exists;
  }

  static void RestoreBinding(Env* env, const std::string& var, bool had,
                             const Value& saved) {
    if (had) {
      (*env)[var] = saved;
    } else {
      env->erase(var);
    }
  }

  Result<Value> Resolve(const Term& t, const Env& env) {
    if (!t.is_var()) return t.constant;
    auto it = env.find(t.var);
    if (it == env.end()) {
      return Status::InvalidArgument("unbound variable '" + t.var + "'");
    }
    return it->second;
  }

  const Database& db_;
  std::vector<Value> adom_;
};

// ---------------------------------------------------------------------------
// Backtracking-join engine for UCQ-shaped bodies.
// ---------------------------------------------------------------------------

/// Rewrites a CQ-shaped formula into atom + compare lists with fresh names
/// for quantified variables.  Returns false on non-CQ shapes.
bool FlattenCq(const Formula& f,
               std::unordered_map<std::string, std::string> scope,
               int* counter, std::vector<FormulaPtr>* keep_alive,
               std::vector<const Formula*>* atoms,
               std::vector<const Formula*>* compares) {
  switch (f.kind()) {
    case Formula::Kind::kAtom: {
      // Apply renaming: rebuild the atom if any arg is renamed.
      bool needs = false;
      for (const Term& t : f.args()) {
        if (t.is_var() && scope.count(t.var)) needs = true;
      }
      if (!needs) {
        atoms->push_back(&f);
        return true;
      }
      std::vector<Term> args = f.args();
      for (Term& t : args) {
        if (t.is_var()) {
          auto it = scope.find(t.var);
          if (it != scope.end()) t.var = it->second;
        }
      }
      keep_alive->push_back(Formula::Atom(f.relation(), std::move(args)));
      atoms->push_back(keep_alive->back().get());
      return true;
    }
    case Formula::Kind::kCompare: {
      bool needs = false;
      for (const Term* t : {&f.lhs(), &f.rhs()}) {
        if (t->is_var() && scope.count(t->var)) needs = true;
      }
      if (!needs) {
        compares->push_back(&f);
        return true;
      }
      Term lhs = f.lhs(), rhs = f.rhs();
      for (Term* t : {&lhs, &rhs}) {
        if (t->is_var()) {
          auto it = scope.find(t->var);
          if (it != scope.end()) t->var = it->second;
        }
      }
      keep_alive->push_back(Formula::Compare(f.cmp_op(), lhs, rhs));
      compares->push_back(keep_alive->back().get());
      return true;
    }
    case Formula::Kind::kAnd:
      for (const auto& c : f.children()) {
        if (!FlattenCq(*c, scope, counter, keep_alive, atoms, compares)) {
          return false;
        }
      }
      return true;
    case Formula::Kind::kExists: {
      for (const std::string& v : f.quantified_vars()) {
        scope[v] = v + "$" + std::to_string((*counter)++);
      }
      return FlattenCq(*f.child(), scope, counter, keep_alive, atoms,
                       compares);
    }
    default:
      return false;
  }
}

class CqJoiner {
 public:
  CqJoiner(const Database& db, const std::vector<const Formula*>& atoms,
           const std::vector<const Formula*>& compares,
           const std::vector<std::string>& head)
      : db_(db), atoms_(atoms), compares_(compares), head_(head) {}

  /// When set, records one witness derivation per (new) answer tuple.
  void set_support_out(std::map<Tuple, std::vector<SupportRow>>* out) {
    support_out_ = out;
  }

  /// Runs the join; returns false if the query is unsafe for this engine
  /// (some head/compare variable never bound by an atom).
  Result<bool> Run(std::set<Tuple>* out) {
    // Safety pre-check: every head variable and compare variable must
    // appear in some atom.
    std::set<std::string> atom_vars;
    for (const Formula* a : atoms_) {
      for (const Term& t : a->args()) {
        if (t.is_var()) atom_vars.insert(t.var);
      }
    }
    for (const std::string& h : head_) {
      if (!atom_vars.count(h)) return false;
    }
    for (const Formula* c : compares_) {
      for (const Term* t : {&c->lhs(), &c->rhs()}) {
        if (t->is_var() && !atom_vars.count(t->var)) return false;
      }
    }
    // Validate relations and arities up front.
    for (const Formula* a : atoms_) {
      auto it = db_.find(a->relation());
      if (it == db_.end()) {
        return Status::NotFound("relation '" + a->relation() +
                                "' not in database");
      }
      if (static_cast<int>(a->args().size()) != it->second->schema().arity()) {
        return Status::InvalidArgument("atom " + a->ToString() +
                                       " does not match arity of " +
                                       it->second->schema().ToString());
      }
    }
    RETURN_IF_ERROR(Recurse(0, out));
    return true;
  }

 private:
  Status Recurse(size_t atom_index, std::set<Tuple>* out) {
    if (atom_index == atoms_.size()) {
      // All atoms matched; evaluate remaining comparisons.
      for (const Formula* c : compares_) {
        Value lhs = ResolveBound(c->lhs());
        Value rhs = ResolveBound(c->rhs());
        if (!EvalCmp(c->cmp_op(), lhs, rhs)) return Status::OK();
      }
      std::vector<Value> head_vals;
      head_vals.reserve(head_.size());
      for (const std::string& h : head_) head_vals.push_back(env_.at(h));
      Tuple answer(std::move(head_vals));
      if (support_out_ != nullptr && !support_out_->count(answer)) {
        (*support_out_)[answer] = match_stack_;
      }
      out->insert(std::move(answer));
      return Status::OK();
    }
    const Formula* atom = atoms_[atom_index];
    const Relation& rel = *db_.at(atom->relation());
    for (int row = 0; row < rel.size(); ++row) {
      const Tuple& t = rel.tuple(row);
      std::vector<std::string> bound_here;
      bool match = true;
      for (size_t i = 0; i < atom->args().size() && match; ++i) {
        const Term& term = atom->args()[i];
        const Value& cell = t.at(static_cast<int>(i));
        if (!term.is_var()) {
          if (!(term.constant == cell)) match = false;
        } else {
          auto it = env_.find(term.var);
          if (it == env_.end()) {
            env_[term.var] = cell;
            bound_here.push_back(term.var);
          } else if (!(it->second == cell)) {
            match = false;
          }
        }
      }
      if (match) {
        match_stack_.push_back(SupportRow{atom->relation(), row});
        RETURN_IF_ERROR(Recurse(atom_index + 1, out));
        match_stack_.pop_back();
      }
      for (const std::string& v : bound_here) env_.erase(v);
    }
    return Status::OK();
  }

  Value ResolveBound(const Term& t) const {
    if (!t.is_var()) return t.constant;
    return env_.at(t.var);
  }

  const Database& db_;
  const std::vector<const Formula*>& atoms_;
  const std::vector<const Formula*>& compares_;
  const std::vector<std::string>& head_;
  Env env_;
  std::map<Tuple, std::vector<SupportRow>>* support_out_ = nullptr;
  std::vector<SupportRow> match_stack_;
};

/// Collects the top-level UCQ disjuncts (the formula itself if CQ-shaped).
void CollectDisjuncts(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind() == Formula::Kind::kOr) {
    for (const auto& c : f.children()) CollectDisjuncts(*c, out);
    return;
  }
  out->push_back(&f);
}

std::vector<Value> ActiveDomain(const Database& db, const Formula& body) {
  std::set<Value> adom;
  for (const auto& [name, rel] : db) {
    (void)name;
    auto d = rel->ActiveDomain();
    adom.insert(d.begin(), d.end());
  }
  for (const Value& v : body.Constants()) adom.insert(v);
  return std::vector<Value>(adom.begin(), adom.end());
}

/// Enumerates head bindings over the active domain and filters with the FO
/// evaluator.  Complete (active-domain semantics) but exponential in |head|.
Result<std::set<Tuple>> EvalNaive(const Query& q, const Database& db,
                                  const std::vector<Value>& adom) {
  std::set<Tuple> out;
  FoEvaluator eval(db, adom);
  std::vector<Value> binding(q.head.size());
  Env env;
  // Recursive enumeration over head variables.
  std::function<Status(size_t)> rec = [&](size_t i) -> Status {
    if (i == q.head.size()) {
      ASSIGN_OR_RETURN(bool ok, eval.Eval(*q.body, &env));
      if (ok) out.insert(Tuple(binding));
      return Status::OK();
    }
    for (const Value& v : adom) {
      env[q.head[i]] = v;
      binding[i] = v;
      RETURN_IF_ERROR(rec(i + 1));
    }
    env.erase(q.head[i]);
    return Status::OK();
  };
  RETURN_IF_ERROR(rec(0));
  return out;
}

}  // namespace

Result<std::set<Tuple>> EvalQuery(const Query& q, const Database& db) {
  if (!q.body) return Status::InvalidArgument("query has no body");
  // Fast path: UCQ-shaped bodies via backtracking joins.
  std::vector<const Formula*> disjuncts;
  CollectDisjuncts(*q.body, &disjuncts);
  bool all_cq = true;
  std::set<Tuple> out;
  std::vector<FormulaPtr> keep_alive;
  for (const Formula* d : disjuncts) {
    std::vector<const Formula*> atoms, compares;
    int counter = 0;
    if (!FlattenCq(*d, {}, &counter, &keep_alive, &atoms, &compares)) {
      all_cq = false;
      break;
    }
    CqJoiner joiner(db, atoms, compares, q.head);
    ASSIGN_OR_RETURN(bool safe, joiner.Run(&out));
    if (!safe) {
      all_cq = false;
      break;
    }
  }
  if (all_cq) return out;
  // General path: active-domain FO semantics.
  return EvalNaive(q, db, ActiveDomain(db, *q.body));
}

Result<std::map<Tuple, std::vector<SupportRow>>> EvalQueryWithSupport(
    const Query& q, const Database& db) {
  if (!q.body) return Status::InvalidArgument("query has no body");
  std::vector<const Formula*> disjuncts;
  CollectDisjuncts(*q.body, &disjuncts);
  std::map<Tuple, std::vector<SupportRow>> support;
  std::set<Tuple> out;
  std::vector<FormulaPtr> keep_alive;
  for (const Formula* d : disjuncts) {
    std::vector<const Formula*> atoms, compares;
    int counter = 0;
    if (!FlattenCq(*d, {}, &counter, &keep_alive, &atoms, &compares)) {
      return Status::Unsupported(
          "support extraction requires a UCQ-shaped body");
    }
    CqJoiner joiner(db, atoms, compares, q.head);
    joiner.set_support_out(&support);
    ASSIGN_OR_RETURN(bool safe, joiner.Run(&out));
    if (!safe) {
      return Status::Unsupported(
          "support extraction requires a range-restricted body");
    }
  }
  return support;
}

Result<bool> EvalClosedFormula(const FormulaPtr& formula, const Database& db) {
  if (!formula) return Status::InvalidArgument("null formula");
  if (!formula->FreeVariables().empty()) {
    return Status::InvalidArgument("formula has free variables");
  }
  FoEvaluator eval(db, ActiveDomain(db, *formula));
  Env env;
  return eval.Eval(*formula, &env);
}

}  // namespace currency::query
