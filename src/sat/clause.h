// Literal / clause representation for the CDCL solver (MiniSat encoding).
//
// The paper's upper-bound algorithms are "guess a completion, check it in
// P" (Theorems 3.1, 3.4, 3.5).  We realize the guessing NP oracle with a
// propositional SAT solver over an order-literal encoding (src/core/
// encoder.h); this header is the shared vocabulary.

#ifndef CURRENCY_SRC_SAT_CLAUSE_H_
#define CURRENCY_SRC_SAT_CLAUSE_H_

#include <string>
#include <vector>

namespace currency::sat {

/// A propositional variable, numbered from 0.
using Var = int;

/// A literal: 2*v for "v", 2*v+1 for "¬v".
using Lit = int;

constexpr Lit kLitUndef = -1;

/// Builds the literal for variable `v`, negated iff `negated`.
inline Lit MakeLit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
/// The variable underlying `l`.
inline Var LitVar(Lit l) { return l >> 1; }
/// True iff `l` is a negative literal.
inline bool LitIsNeg(Lit l) { return l & 1; }
/// The complement of `l`.
inline Lit Negate(Lit l) { return l ^ 1; }

/// Renders a literal as "x3" / "~x3".
std::string LitToString(Lit l);

/// A disjunction of literals.
struct Clause {
  std::vector<Lit> lits;
  bool learnt = false;
  /// Bumped when the clause participates in conflict analysis; learnt
  /// clauses with low activity are candidates for deletion (ReduceDB).
  double activity = 0.0;
  /// Literal block distance at learn time: number of distinct decision
  /// levels among the clause's literals.  Low-LBD ("glue") clauses are
  /// never deleted.
  int lbd = 0;
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_CLAUSE_H_
