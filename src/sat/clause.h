// Literal vocabulary and arena-backed clause storage for the CDCL solver.
//
// The paper's upper-bound algorithms are "guess a completion, check it in
// P" (Theorems 3.1, 3.4, 3.5).  We realize the guessing NP oracle with a
// propositional SAT solver over an order-literal encoding (src/core/
// encoder.h); this header is the shared vocabulary plus the solver's
// clause memory.
//
// Clause storage (MiniSat/Glucose-style).  All clauses live in ONE flat
// uint32_t buffer owned by a ClauseArena.  A clause is addressed by a
// CRef — its word offset into the buffer — and laid out as
//
//   [header][activity][lbd][lit 0][lit 1] ... [lit size-1]
//            `---- learnt only ----'
//
// where the header packs the literal count with the learnt/relocated/
// dead flags.  Compared to one heap-allocated std::vector<Lit> per
// clause, dereferencing a CRef is a single indexed load into memory that
// propagation walks mostly sequentially — the hot loop stops being a
// chain of dependent cache misses.
//
// CRef lifetime rules:
//  * A CRef stays valid until the arena garbage-collects (ClauseArena::
//    GcBegin/GcRelocate/GcForward/GcEnd, driven by Solver::ReduceDB).
//    Holders of CRefs across a GC must translate them through
//    GcForward; the solver does this for its clause list, watcher
//    lists, and reason slots, preserving order everywhere so a
//    relocation-only GC is bit-for-bit transparent to the search.
//  * Free() only marks a clause dead and counts the waste; the words are
//    reclaimed by the next GC.  Dead clauses must be unhooked from every
//    watcher list before GC runs (GcRelocate asserts on them).

#ifndef CURRENCY_SRC_SAT_CLAUSE_H_
#define CURRENCY_SRC_SAT_CLAUSE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace currency::sat {

/// A propositional variable, numbered from 0.
using Var = int;

/// A literal: 2*v for "v", 2*v+1 for "¬v".
using Lit = int;

constexpr Lit kLitUndef = -1;

/// Builds the literal for variable `v`, negated iff `negated`.
inline Lit MakeLit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
/// The variable underlying `l`.
inline Var LitVar(Lit l) { return l >> 1; }
/// True iff `l` is a negative literal.
inline bool LitIsNeg(Lit l) { return l & 1; }
/// The complement of `l`.
inline Lit Negate(Lit l) { return l ^ 1; }

/// Renders a literal as "x3" / "~x3".
std::string LitToString(Lit l);

/// Reference to a clause: word offset of its header in the arena buffer.
using CRef = uint32_t;
constexpr CRef kCRefUndef = 0xFFFFFFFFu;

/// Mutable view of one clause inside a ClauseArena.  Cheap to construct
/// (a pointer plus the literal offset); invalidated by any arena
/// allocation or GC, so views are made fresh from a CRef at each use and
/// never stored.
class ClauseView {
 public:
  static constexpr uint32_t kLearntBit = 1u;
  static constexpr uint32_t kRelocBit = 2u;
  static constexpr uint32_t kDeadBit = 4u;
  /// Learnt-DB tier tag (bits 3-4) and the touched-since-last-reduction
  /// bit (bit 5); see Solver::ReduceDB for the tier lifecycle.  Both ride
  /// in the header word, so GC relocation (which copies headers verbatim)
  /// preserves tier state for free.
  static constexpr int kTierShift = 3;
  static constexpr uint32_t kTierMask = 3u << kTierShift;
  static constexpr uint32_t kUsedBit = 1u << 5;
  static constexpr int kSizeShift = 6;

  explicit ClauseView(uint32_t* header)
      : p_(header), lit_base_((*header & kLearntBit) ? 3 : 1) {}

  int size() const { return static_cast<int>(p_[0] >> kSizeShift); }
  bool learnt() const { return (p_[0] & kLearntBit) != 0; }
  bool dead() const { return (p_[0] & kDeadBit) != 0; }

  /// Literals are stored as uint32_t words; valid literals are always
  /// non-negative, so value conversion is lossless (and avoids aliasing
  /// the buffer as int*).
  Lit lit(int i) const { return static_cast<Lit>(p_[lit_base_ + i]); }
  void set_lit(int i, Lit l) { p_[lit_base_ + i] = static_cast<uint32_t>(l); }
  void swap_lits(int i, int j) {
    uint32_t t = p_[lit_base_ + i];
    p_[lit_base_ + i] = p_[lit_base_ + j];
    p_[lit_base_ + j] = t;
  }

  /// Activity and LBD live in the two extra header words of learnt
  /// clauses (float bits / uint32).  Callers must check learnt().
  float activity() const {
    float f;
    std::memcpy(&f, &p_[1], sizeof f);
    return f;
  }
  void set_activity(float a) { std::memcpy(&p_[1], &a, sizeof a); }
  int lbd() const { return static_cast<int>(p_[2]); }
  void set_lbd(int lbd) { p_[2] = static_cast<uint32_t>(lbd); }

  /// Learnt-DB tier (Solver::kTierCore/kTierMid/kTierLocal) and the
  /// touched-since-last-reduction mark.  Meaningful only for learnt
  /// clauses longer than binary; see Solver::ReduceDB.
  int tier() const { return static_cast<int>((p_[0] & kTierMask) >> kTierShift); }
  void set_tier(int tier) {
    p_[0] = (p_[0] & ~kTierMask) |
            (static_cast<uint32_t>(tier) << kTierShift);
  }
  bool used() const { return (p_[0] & kUsedBit) != 0; }
  void set_used(bool on) {
    if (on) {
      p_[0] |= kUsedBit;
    } else {
      p_[0] &= ~kUsedBit;
    }
  }

  /// Words this clause occupies in the arena.
  int num_words() const { return lit_base_ + size(); }

 private:
  friend class ClauseArena;
  uint32_t* p_;
  int lit_base_;
};

/// The flat clause buffer.  Alloc appends; Free marks dead and counts
/// waste; GcBegin/GcRelocate/GcForward/GcEnd compact into a fresh buffer
/// (two-space copy with forwarding pointers in the old space).
class ClauseArena {
 public:
  /// Allocates a clause over `lits` (size >= 2).  `lbd`/`activity` are
  /// stored only for learnt clauses.
  CRef Alloc(const std::vector<Lit>& lits, bool learnt, int lbd,
             float activity);

  ClauseView View(CRef c) {
    assert(c < mem_.size());
    return ClauseView(&mem_[c]);
  }

  /// Hints the clause's header cache line into L2.  Side-effect free;
  /// propagation issues it for the NEXT watcher while the current one is
  /// processed, but only when that watcher's blocker did not already
  /// prove the clause satisfied (a true blocker means the clause is
  /// never dereferenced, so prefetching it would only pollute the cache).
  void Prefetch(CRef c) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(mem_.data() + c, /*rw=*/0, /*locality=*/1);
#else
    (void)c;
#endif
  }

  /// Marks the clause dead (words reclaimed by the next GC).
  void Free(CRef c);

  /// Bytes in the live buffer / marked dead.  wasted_bytes() is the GC
  /// trigger input; size_bytes() feeds SolverStats::arena_bytes.
  int64_t size_bytes() const {
    return static_cast<int64_t>(mem_.size()) * 4;
  }
  int64_t wasted_bytes() const { return static_cast<int64_t>(wasted_) * 4; }

  // --- garbage collection (two-space copy) ---
  /// Starts a GC cycle: the current buffer becomes from-space and a new
  /// to-space buffer is reserved for the live words.
  void GcBegin();
  /// Copies `c` (a from-space ref) into to-space once, leaving a
  /// forwarding pointer behind; returns the to-space ref.  Asserts the
  /// clause is not dead — dead clauses must already be unhooked.
  CRef GcRelocate(CRef c);
  /// Translates an already-relocated from-space ref.
  CRef GcForward(CRef c) const;
  /// Ends the cycle: drops from-space, resets the waste counter.
  void GcEnd();

 private:
  std::vector<uint32_t> mem_;
  std::vector<uint32_t> old_;  ///< from-space, alive only during a GC
  size_t wasted_ = 0;          ///< words occupied by dead clauses
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_CLAUSE_H_
