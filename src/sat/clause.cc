#include "src/sat/clause.h"

namespace currency::sat {

std::string LitToString(Lit l) {
  std::string out = LitIsNeg(l) ? "~x" : "x";
  out += std::to_string(LitVar(l));
  return out;
}

}  // namespace currency::sat
