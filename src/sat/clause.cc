#include "src/sat/clause.h"

namespace currency::sat {

std::string LitToString(Lit l) {
  std::string out = LitIsNeg(l) ? "~x" : "x";
  out += std::to_string(LitVar(l));
  return out;
}

CRef ClauseArena::Alloc(const std::vector<Lit>& lits, bool learnt, int lbd,
                        float activity) {
  assert(lits.size() >= 2);
  CRef c = static_cast<CRef>(mem_.size());
  uint32_t header =
      (static_cast<uint32_t>(lits.size()) << ClauseView::kSizeShift) |
      (learnt ? ClauseView::kLearntBit : 0u);
  mem_.push_back(header);
  if (learnt) {
    uint32_t act_bits;
    std::memcpy(&act_bits, &activity, sizeof act_bits);
    mem_.push_back(act_bits);
    mem_.push_back(static_cast<uint32_t>(lbd));
  }
  for (Lit l : lits) mem_.push_back(static_cast<uint32_t>(l));
  return c;
}

void ClauseArena::Free(CRef c) {
  ClauseView v = View(c);
  assert(!v.dead());
  wasted_ += static_cast<size_t>(v.num_words());
  v.p_[0] |= ClauseView::kDeadBit;
}

void ClauseArena::GcBegin() {
  assert(old_.empty());
  old_.swap(mem_);
  mem_.reserve(old_.size() > wasted_ ? old_.size() - wasted_ : 0);
}

CRef ClauseArena::GcRelocate(CRef c) {
  assert(c < old_.size());
  uint32_t header = old_[c];
  if (header & ClauseView::kRelocBit) return old_[c + 1];
  assert((header & ClauseView::kDeadBit) == 0 &&
         "dead clause still referenced at GC time");
  ClauseView from(&old_[c]);
  CRef to = static_cast<CRef>(mem_.size());
  int words = from.num_words();
  mem_.insert(mem_.end(), &old_[c], &old_[c] + words);
  // Forwarding pointer: mark the from-space copy relocated and stash the
  // to-space ref in its first payload word (the old contents are dead).
  old_[c] |= ClauseView::kRelocBit;
  old_[c + 1] = to;
  return to;
}

CRef ClauseArena::GcForward(CRef c) const {
  assert(c < old_.size());
  assert((old_[c] & ClauseView::kRelocBit) != 0 &&
         "GcForward on a clause that was never relocated");
  return old_[c + 1];
}

void ClauseArena::GcEnd() {
  old_.clear();
  old_.shrink_to_fit();
  wasted_ = 0;
}

}  // namespace currency::sat
