// Quantified Boolean formulas with CNF or DNF matrices, plus a brute-force
// evaluator.  This is the *independent oracle* used to validate the
// lower-bound reductions of the paper (Theorems 3.1, 3.4, 3.5, 5.1, 5.3):
// every reduction test generates a formula, evaluates it here, and checks
// the corresponding currency solver agrees.

#ifndef CURRENCY_SRC_SAT_QBF_H_
#define CURRENCY_SRC_SAT_QBF_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sat/clause.h"

namespace currency::sat {

/// A block of identically quantified variables.
struct QuantBlock {
  bool exists = true;        ///< true: ∃, false: ∀
  std::vector<Var> vars;
};

/// A prenex QBF.  The matrix is a conjunction of clauses (CNF) or a
/// disjunction of cubes (DNF) over literals in MiniSat encoding.
struct Qbf {
  int num_vars = 0;
  std::vector<QuantBlock> prefix;
  bool matrix_is_cnf = true;
  /// CNF: each inner vector is a clause (disjunction).
  /// DNF: each inner vector is a cube (conjunction).
  std::vector<std::vector<Lit>> terms;

  /// Renders e.g. "∃{0,1}∀{2} CNF[(x0|~x2)(x1)]" for debugging.
  std::string ToString() const;
};

/// Evaluates the matrix under a total assignment.
bool EvaluateMatrix(const Qbf& qbf, const std::vector<bool>& assignment);

/// Brute-force QBF evaluation by recursion over the prefix.  Variables not
/// mentioned in the prefix are implicitly existential (innermost).
/// Exponential in num_vars; fails if num_vars exceeds `max_vars` (guard
/// against accidental blowups in tests).
Result<bool> EvaluateQbf(const Qbf& qbf, int max_vars = 26);

/// Generates a random prenex QBF with the given quantifier block sizes and
/// `num_terms` random 3-literal terms.  `cnf` selects CNF vs DNF matrix.
/// Each quantifier block alternates starting from `first_exists`.  When
/// the blocks contribute no variables at all (`block_sizes` empty or
/// all-zero) there is nothing to draw literals from, so the matrix stays
/// empty: the result is the trivially true (CNF) / false (DNF) QBF.
Qbf RandomQbf(const std::vector<int>& block_sizes, bool first_exists,
              int num_terms, bool cnf, std::mt19937* rng);

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_QBF_H_
