// Verdict-deterministic portfolio solving: race N diversified CDCL
// solvers over one CNF, first verdict wins, losers are cancelled.
//
// Why this is safe where the parallel layer's other tricks are not:
// SAT/UNSAT is a property of the FORMULA, not of the search path, so
// every sound solver returns the same verdict no matter which one
// finishes first — the race is nondeterministic in *time* but
// deterministic in *answer*.  That is exactly the contract CPS base
// solves and COP/DCIP refutation probes need.  What a race does NOT
// preserve is the model: the winning solver's model depends on who won,
// so anything that reads a witness (CPS want_witness completions, CCQA
// model enumeration, DCIP's phase-1 baseline snapshot) must stay on the
// deterministic single-solver path.  Callers re-establish a model with a
// plain Solve() on the primary when they need one after a race.
//
// Topology: one Portfolio fronts one PRIMARY solver (the caller's
// long-lived, stats-bearing encoder solver) plus rival solvers spawned
// lazily over the same CNF with diversified Solver::Options (seed, phase
// init, restart profile).  Races run as a ParallelFor region on the
// caller's shared exec::ThreadPool; the first task to finish sets a stop
// flag (polled by Solver::SolveLimited) and cancels the region's
// unclaimed tasks.  Race accounting lands in the primary's SolverStats
// (portfolio_races / portfolio_cancelled), so the serving layer's
// solve-boundary delta sampling exports it for free.
//
// Single-thread pass-through: when the pool cannot actually run rivals
// concurrently (num_threads() <= 1, or the portfolio is sized to one
// solver), Solve() calls the primary directly — no rivals are ever
// spawned, no stop flag is polled, no region is opened.  Portfolio-on at
// one thread is therefore byte-identical (answers, stats, overhead) to
// portfolio-off, which is what makes it safe to leave enabled on 1-CPU
// hosts.
//
// Nesting: Portfolio::Solve opens a ParallelFor region, so per the exec
// contract it must NOT be called from inside another region on the same
// pool.  Callers (DecomposedEncoder::SolveAll, the COP/DCIP probe loops,
// serve's epoch base solves) therefore race dominant components
// sequentially from the region-owning thread, outside their per-component
// fan-out.

#ifndef CURRENCY_SRC_SAT_PORTFOLIO_H_
#define CURRENCY_SRC_SAT_PORTFOLIO_H_

#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/exec/thread_pool.h"
#include "src/sat/solver.h"

namespace currency::sat {

/// Caller-facing knobs.  Carried by CpsOptions/CopOptions/DcipOptions and
/// serve::SessionOptions; disabled by default everywhere.
struct PortfolioOptions {
  /// Master switch.  Off keeps every solve on the single-solver path.
  bool enabled = false;
  /// Solvers per race, INCLUDING the primary (config 0).  Clamped to the
  /// pool's thread count — a rival that could never run concurrently is
  /// never built.
  int num_solvers = 4;
  /// Only components with at least this many entity groups are routed
  /// through the portfolio; smaller ones stay on the (cheaper, already
  /// parallel-across-components) single-solver path.
  int min_component_size = 8;
};

/// A reusable verdict race over one fixed CNF.
class Portfolio {
 public:
  /// Builds the rival solver for diversified configuration `config`
  /// (1-based; config 0 is the primary).  The callee owns the returned
  /// solver's storage and must keep it alive as long as the Portfolio —
  /// encoder-backed callers stash the rival Encoder and return
  /// &encoder->solver().  Called lazily, once per config, on the first
  /// multi-threaded Solve; never called on the pass-through path.
  using Spawn = std::function<Result<Solver*>(int config,
                                              const Solver::Options& options)>;

  /// `primary` and `pool` are borrowed and must outlive the Portfolio.
  Portfolio(Solver* primary, Spawn spawn, const PortfolioOptions& options,
            exec::ThreadPool* pool)
      : primary_(primary),
        spawn_(std::move(spawn)),
        options_(options),
        pool_(pool) {}

  /// Races the configured solvers on SolveWithAssumptions(assumptions)
  /// and returns the (race-independent) verdict.  Pass-through to the
  /// primary when the pool is single-threaded or the portfolio is sized
  /// to one solver.  After a race the primary may hold NO model even on
  /// kSat — callers needing a witness must re-Solve() on the primary.
  Result<SolveResult> Solve(const std::vector<Lit>& assumptions = {});

  /// Diversified configurations for configs 1..n-1 (config 0 is the
  /// primary's own options and is not returned).  Deterministic; spans
  /// phase inits × restart profiles × seeds.
  static std::vector<Solver::Options> DiversifiedConfigs(int num_rivals);

  /// Solvers a race would use right now (pass-through reports 1).
  int RaceWidth() const;

 private:
  Solver* primary_;
  Spawn spawn_;
  PortfolioOptions options_;
  exec::ThreadPool* pool_;
  std::vector<Solver*> rivals_;  ///< borrowed; storage owned by spawn_'s captor
  bool spawned_ = false;
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_PORTFOLIO_H_
