#include "src/sat/qbf.h"

#include <sstream>

namespace currency::sat {

std::string Qbf::ToString() const {
  std::ostringstream os;
  for (const QuantBlock& b : prefix) {
    os << (b.exists ? "∃{" : "∀{");
    for (size_t i = 0; i < b.vars.size(); ++i) {
      if (i) os << ",";
      os << b.vars[i];
    }
    os << "}";
  }
  os << (matrix_is_cnf ? " CNF[" : " DNF[");
  for (const auto& term : terms) {
    os << "(";
    for (size_t i = 0; i < term.size(); ++i) {
      if (i) os << (matrix_is_cnf ? "|" : "&");
      os << LitToString(term[i]);
    }
    os << ")";
  }
  os << "]";
  return os.str();
}

bool EvaluateMatrix(const Qbf& qbf, const std::vector<bool>& assignment) {
  auto lit_true = [&](Lit l) {
    bool v = assignment[LitVar(l)];
    return LitIsNeg(l) ? !v : v;
  };
  if (qbf.matrix_is_cnf) {
    for (const auto& clause : qbf.terms) {
      bool sat = false;
      for (Lit l : clause) {
        if (lit_true(l)) {
          sat = true;
          break;
        }
      }
      if (!sat) return false;
    }
    return true;
  }
  for (const auto& cube : qbf.terms) {
    bool sat = true;
    for (Lit l : cube) {
      if (!lit_true(l)) {
        sat = false;
        break;
      }
    }
    if (sat) return true;
  }
  return false;
}

namespace {

bool EvaluateRec(const Qbf& qbf, const std::vector<Var>& order,
                 const std::vector<bool>& exists, size_t index,
                 std::vector<bool>* assignment) {
  if (index == order.size()) return EvaluateMatrix(qbf, *assignment);
  Var v = order[index];
  (*assignment)[v] = false;
  bool r0 = EvaluateRec(qbf, order, exists, index + 1, assignment);
  if (exists[index] && r0) return true;
  if (!exists[index] && !r0) return false;
  (*assignment)[v] = true;
  return EvaluateRec(qbf, order, exists, index + 1, assignment);
}

}  // namespace

Result<bool> EvaluateQbf(const Qbf& qbf, int max_vars) {
  if (qbf.num_vars > max_vars) {
    return Status::ResourceExhausted(
        "QBF oracle limited to " + std::to_string(max_vars) + " variables (" +
        std::to_string(qbf.num_vars) + " requested)");
  }
  std::vector<Var> order;
  std::vector<bool> exists;
  std::vector<bool> mentioned(qbf.num_vars, false);
  for (const QuantBlock& b : qbf.prefix) {
    for (Var v : b.vars) {
      if (v < 0 || v >= qbf.num_vars) {
        return Status::InvalidArgument("prefix variable out of range");
      }
      if (mentioned[v]) {
        return Status::InvalidArgument("variable quantified twice");
      }
      mentioned[v] = true;
      order.push_back(v);
      exists.push_back(b.exists);
    }
  }
  // Unmentioned variables are innermost existentials.
  for (Var v = 0; v < qbf.num_vars; ++v) {
    if (!mentioned[v]) {
      order.push_back(v);
      exists.push_back(true);
    }
  }
  std::vector<bool> assignment(qbf.num_vars, false);
  return EvaluateRec(qbf, order, exists, 0, &assignment);
}

Qbf RandomQbf(const std::vector<int>& block_sizes, bool first_exists,
              int num_terms, bool cnf, std::mt19937* rng) {
  Qbf qbf;
  qbf.matrix_is_cnf = cnf;
  bool exists = first_exists;
  for (int size : block_sizes) {
    QuantBlock block;
    block.exists = exists;
    for (int i = 0; i < size; ++i) block.vars.push_back(qbf.num_vars++);
    qbf.prefix.push_back(std::move(block));
    exists = !exists;
  }
  if (qbf.num_vars == 0) {
    // No variables to draw literals from: constructing the distribution
    // below with the range (0, -1) would be undefined behavior.  Return
    // the empty-matrix QBF (trivially true as CNF, false as DNF).
    return qbf;
  }
  std::uniform_int_distribution<int> var_dist(0, qbf.num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  for (int t = 0; t < num_terms; ++t) {
    std::vector<Lit> term;
    for (int i = 0; i < 3; ++i) {
      term.push_back(MakeLit(var_dist(*rng), sign_dist(*rng) == 1));
    }
    qbf.terms.push_back(std::move(term));
  }
  return qbf;
}

}  // namespace currency::sat
