// A compact CDCL SAT solver: two-watched-literal propagation with blocker
// literals, binary-clause specialization, 1UIP clause learning with
// backjumping, VSIDS activities on an indexed mutable heap with phase
// saving, Luby restarts, and activity/LBD-guided learnt-clause deletion
// with arena garbage collection.  Supports incremental solving under
// assumptions and incremental clause addition between calls — exactly
// what the currency solvers (CPS/COP/DCIP/CCQA) need.
//
// This is the engine realizing the paper's upper bounds (Theorems 3.1,
// 3.4, 3.5): the NP/Σ₂ᵖ search over consistent completions runs as CDCL
// on the order encoding from src/core/encoder.h.
//
// Memory layout (the hot-path story; see src/sat/clause.h for the word
// format):
//
//  * All clauses live inline in one flat uint32_t ClauseArena and are
//    addressed by CRef offsets.  Propagation's clause dereference is a
//    single indexed load instead of the two dependent misses of a
//    vector<Clause>-of-vector<Lit> layout.
//  * Watchers carry a BLOCKER literal — a literal of the clause (the
//    other watched literal, possibly stale) whose truth proves the
//    clause satisfied.  Watch lists are arrays of {CRef, blocker}, so a
//    satisfied clause is skipped by reading only the watcher itself,
//    never touching the arena.  A stale blocker is safe in both
//    directions: true ⇒ the clause is satisfied (skip is sound); false
//    or unset ⇒ we dereference the clause as usual.
//  * BINARY clauses live in separate per-literal watcher lists whose
//    entry stores the other literal as the payload: propagation of a
//    binary clause — skip, enqueue, or conflict — never touches the
//    arena at all.  The CRef rides along purely as the reason/conflict
//    handle for Analyze.  Binary watches never move, so these lists are
//    append-only between deletions.
//
// CRef lifetime and GC: ReduceDB marks deleted learnt clauses dead,
// unhooks their watchers, and then compacts the arena (two-space copy).
// Compaction translates every held CRef — clause list, watcher lists,
// reason slots — IN PLACE, preserving list order and clause literal
// order, so a relocation-only GC is bit-for-bit transparent to the
// search: same decisions, same models, same statistics (the metamorphic
// suite asserts this).  GC runs only at decision level 0; no CRef may be
// held across ReduceDB by callers (none of the public API exposes one).
//
// Thread confinement: a Solver is NOT thread-safe — no internal locking,
// and every entry point (NewVar, AddClause, Solve, SolveWithAssumptions,
// ModelValue) mutates or reads search state.  The parallel execution
// layer (src/exec) therefore confines each solver to one task at a time:
// concurrent use of *distinct* solvers is fine, sequential hand-off of
// one solver between threads is fine when a happens-before edge orders
// the calls (ThreadPool::ParallelFor's fork and join provide one), but
// two threads inside one solver at once is a bug.  Debug builds enforce
// this with a cheap overlapping-call assert; ThreadSanitizer (see
// CURRENCY_TSAN) catches the rest.

#ifndef CURRENCY_SRC_SAT_SOLVER_H_
#define CURRENCY_SRC_SAT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/sat/clause.h"

namespace currency::sat {

/// Outcome of a Solve() call.
enum class SolveResult { kSat, kUnsat };

/// Counters exposed for the ablation benchmarks.
struct SolverStats {
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
  int64_t restarts = 0;
  int64_t learnt_clauses = 0;
  int64_t deleted_clauses = 0;
  int64_t reductions = 0;
  /// Arena compactions run (every ReduceDB that deletes compacts).
  int64_t gc_runs = 0;
  /// Current size of the flat clause buffer, in bytes.
  int64_t arena_bytes = 0;
  /// Literals removed from learnt clauses before attachment (recursive
  /// litRedundant minimization + binary self-subsumption combined).
  int64_t minimized_literals = 0;
  /// Live learnt clauses (longer than binary) currently in each tier.
  int64_t tier_core = 0;
  int64_t tier_tier2 = 0;
  int64_t tier_local = 0;
  /// TIER2 clauses demoted to LOCAL for going untouched across a
  /// reduction.
  int64_t demotions = 0;
  /// Portfolio races this solver fronted as the primary, and rival
  /// solvers cancelled (or skipped) once a verdict landed.  Bumped by
  /// sat::Portfolio via RecordPortfolioRace, never by the solver itself.
  int64_t portfolio_races = 0;
  int64_t portfolio_cancelled = 0;
};

/// A CDCL solver.  Typical use:
///   Solver s;
///   Var a = s.NewVar(), b = s.NewVar();
///   s.AddClause({MakeLit(a), MakeLit(b, true)});
///   if (s.Solve() == SolveResult::kSat) { bool va = s.ModelValue(a); ... }
class Solver {
 public:
  /// Search-diversification knobs for portfolio solving.  The DEFAULTS
  /// reproduce the undiversified search bit-for-bit (negative phase
  /// init, Luby-100 restarts, no randomness): a default-constructed
  /// Solver and a Solver(Options{}) run identical searches, which is
  /// what keeps the single-solver determinism contracts (enumeration
  /// order, GC transparency) intact everywhere the portfolio is off.
  struct Options {
    enum class PhaseInit { kNegative, kPositive, kRandom };
    enum class RestartProfile { kLuby, kFastLuby, kGeometric };
    /// 0 disables all randomness.  Nonzero seeds an xorshift64 stream
    /// used for kRandom phase initialization and occasional random
    /// branch picks — deterministic per seed, different across seeds.
    uint64_t rng_seed = 0;
    PhaseInit phase_init = PhaseInit::kNegative;
    RestartProfile restart_profile = RestartProfile::kLuby;
  };

  Solver() = default;
  explicit Solver(const Options& options)
      : options_(options), rng_state_(options.rng_seed) {}

  /// Allocates a fresh variable and returns it.
  Var NewVar();

  /// Number of allocated variables.
  int NumVars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (disjunction of literals).  The literal list is
  /// simplified at level 0 before anything is attached: literals are
  /// sorted and deduplicated, tautologies (p ∨ ¬p) and clauses already
  /// satisfied at level 0 are dropped entirely, and false-at-level-0
  /// literals are removed — so the encoder's generated clause stream
  /// never watches redundant literals.  Returns false if the solver is
  /// already in an UNSAT state after the simplification (adding the
  /// empty clause, or a unit that contradicts level-0 knowledge).
  bool AddClause(std::vector<Lit> lits);

  /// Solves the current formula.
  SolveResult Solve() { return SolveWithAssumptions({}); }

  /// Solves under the given assumption literals.  The assumptions are not
  /// added to the formula; they only constrain this call.
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions) {
    return *SolveLimited(assumptions, nullptr);
  }

  /// Interruptible variant: `stop` (may be null) is polled every few
  /// hundred search loop iterations; once it reads true the search
  /// unwinds to level 0 and returns nullopt — no verdict.  The solver
  /// stays fully usable: clauses learnt before the interrupt are implied
  /// by the formula, so later calls remain sound and verdict-correct.
  /// This is the portfolio's first-verdict-wins cancellation hook; the
  /// solver itself never depends on src/exec.
  std::optional<SolveResult> SolveLimited(const std::vector<Lit>& assumptions,
                                          const std::atomic<bool>* stop);

  /// Accounting hook for sat::Portfolio: records one verdict race
  /// fronted by this (primary) solver and how many rival solvers were
  /// cancelled or skipped once the verdict landed.  Lives in
  /// SolverStats so the serving layer's solve-boundary delta sampling
  /// exports portfolio counters with no extra plumbing.
  void RecordPortfolioRace(int cancelled_rivals) {
    ++stats_.portfolio_races;
    stats_.portfolio_cancelled += cancelled_rivals;
  }

  const Options& options() const { return options_; }

  /// Value of `v` in the most recent satisfying model.  Requires the last
  /// Solve call to have returned kSat.
  bool ModelValue(Var v) const { return model_[v] == 1; }

  /// The full model (indexed by Var) from the last kSat call.
  const std::vector<int8_t>& model() const { return model_; }

  /// True once the formula is known unsatisfiable regardless of assumptions.
  bool IsUnsatForever() const { return !ok_; }

  const SolverStats& stats() const { return stats_; }

  // --- test hooks (process-wide, off by default) ---
  /// When on, every Solve entry and every restart additionally compacts
  /// the arena.  Relocation is required to be bit-for-bit transparent,
  /// so any observable difference under this hook is a GC bug — the
  /// metamorphic suite runs workloads with and without it and asserts
  /// identical models, enumeration orders, and search statistics.
  static void SetGcStressForTesting(bool on);
  /// Overrides the adaptive learnt-clause limit with a fixed one (pass
  /// -1 to restore the default), forcing frequent ReduceDB + GC cycles
  /// mid-search.  Unlike the GC-stress hook this legitimately changes
  /// the search path; tests using it compare against independent oracles
  /// rather than against un-hooked runs.
  static void SetReduceLimitForTesting(int64_t limit);

 private:
  /// A long-clause watcher: the clause plus a blocker literal whose
  /// truth proves the clause satisfied without dereferencing it.
  struct Watcher {
    CRef cref;
    Lit blocker;
  };
  /// A binary-clause watcher: the other literal IS the payload; the
  /// CRef is only the reason/conflict handle for Analyze.
  struct BinWatcher {
    Lit other;
    CRef cref;
  };

  /// Indexed mutable binary max-heap over variable activities: BumpVar
  /// percolates the entry in place instead of re-pushing stale copies
  /// the way the old lazy priority_queue did.
  class VarOrderHeap {
   public:
    void Grow(int num_vars) {
      indices_.resize(static_cast<size_t>(num_vars), -1);
    }
    bool Empty() const { return heap_.empty(); }
    bool Contains(Var v) const { return indices_[v] >= 0; }
    void Insert(Var v, const std::vector<double>& act);
    Var PopMax(const std::vector<double>& act);
    /// Restores the heap property after act[v] increased (no-op when v
    /// is not currently in the heap).
    void Increased(Var v, const std::vector<double>& act) {
      if (Contains(v)) Up(indices_[v], act);
    }

   private:
    void Up(int i, const std::vector<double>& act);
    void Down(int i, const std::vector<double>& act);
    std::vector<Var> heap_;
    std::vector<int> indices_;  ///< per var: heap position or -1
  };

  // --- assignment trail ---
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }
  /// Current value of a literal: +1 true, -1 false, 0 unassigned.
  int LitValue(Lit l) const {
    int8_t v = assign_[LitVar(l)];
    return LitIsNeg(l) ? -v : v;
  }
  void UncheckedEnqueue(Lit l, CRef reason);
  void CancelUntil(int level);

  // --- search ---
  /// Propagates all pending assignments; returns the conflicting clause
  /// or kCRefUndef.  Binary watchers first (no arena access), then long
  /// watchers (arena touched only when the blocker fails).
  CRef Propagate();
  /// 1UIP conflict analysis; fills `learnt` (learnt[0] is the asserting
  /// literal) and returns the backjump level.  Skips the resolved
  /// literal by value, not by position — binary reasons keep their
  /// stored literal order.  Before returning, the learnt clause is
  /// minimized (LitRedundant + MinimizeWithBinaryResolution); the
  /// asserting literal learnt[0] is never removed.
  int Analyze(CRef conflict, std::vector<Lit>* learnt);
  /// True iff learnt literal `p` is redundant: implied by the remaining
  /// learnt literals through the implication graph (MiniSat's recursive
  /// litRedundant, run as an explicit-frame DFS so deep implication
  /// chains cannot overflow the native stack).  Requires reason_[var(p)]
  /// != kCRefUndef.  Marks visited vars removable/failed in seen_ for
  /// memoization across the literals of one learnt clause; every mark is
  /// registered in analyze_toclear_ for Analyze to wipe.
  bool LitRedundant(Lit p);
  /// Self-subsumption against the binary clauses of the asserting
  /// literal a = learnt[0]: (a ∨ q ∨ R) resolved with a binary (a ∨ ¬q)
  /// drops q.  Never touches learnt[0].
  void MinimizeWithBinaryResolution(std::vector<Lit>* learnt);
  /// Attaches a clause to the (binary or long) watch lists.
  void Attach(CRef cref);
  /// Picks the next branching literal (VSIDS + saved phase), or kLitUndef.
  Lit PickBranchLit();
  void BumpVar(Var v);
  void BumpClause(CRef cref);
  void DecayActivities() {
    var_inc_ /= 0.95;
    cla_inc_ /= 0.999;
  }
  /// Literal block distance of a freshly learnt clause: the number of
  /// distinct decision levels among its literals.
  int LearntLbd(const std::vector<Lit>& learnt);

  // --- three-tier learnt-clause DB (Glucose/Chanseok-Oh style) ---
  // CORE (LBD <= kCoreLbdMax): kept forever.  TIER2 (LBD <=
  // kMidLbdMax): kept while touched; demoted to LOCAL when untouched
  // across a reduction.  LOCAL: activity-ranked, worst half deleted at
  // every reduction.  Tier tags live in the arena header word and so
  // survive GC relocation verbatim.  Learnt binaries stay outside the
  // tiered DB entirely (they are never deletable).
  static constexpr int kTierCore = 0;
  static constexpr int kTierMid = 1;
  static constexpr int kTierLocal = 2;
  static constexpr int kCoreLbdMax = 3;
  static constexpr int kMidLbdMax = 6;
  int64_t* TierCounter(int tier) {
    return tier == kTierCore   ? &stats_.tier_core
           : tier == kTierMid ? &stats_.tier_tier2
                               : &stats_.tier_local;
  }
  void MoveTier(ClauseView c, int to) {
    --*TierCounter(c.tier());
    ++*TierCounter(to);
    c.set_tier(to);
  }
  /// Marks a learnt clause touched (it participated in conflict
  /// analysis), recomputes its LBD against current levels, and promotes
  /// it on improvement (to CORE, or LOCAL -> TIER2).
  void TouchLearnt(CRef cref);
  /// LBD of an attached clause whose literals are all assigned.
  int ClauseLbd(ClauseView c);

  /// Tier-driven reduction: demotes untouched TIER2 clauses to LOCAL,
  /// then deletes the lowest-activity half of the unlocked LOCAL pool
  /// (CORE and binaries are never deleted) and compacts the arena.
  /// Requires decision level 0 with propagation complete.  Without this,
  /// learnt clauses and the model enumerator's long blocking-clause runs
  /// (DCIP/CCQA) degrade propagation and memory without bound.
  void ReduceDB();
  /// Runs ReduceDB when the learnt-clause count exceeds the adaptive
  /// limit, growing the limit after each reduction.
  void MaybeReduceDB();
  /// Two-space arena compaction: relocates every live clause and
  /// translates the clause list, reason slots, and watcher lists in
  /// place (order preserved — relocation is bit-for-bit transparent to
  /// the search).  Level 0 only.
  void GarbageCollect();
  void SyncArenaStats() { stats_.arena_bytes = arena_.size_bytes(); }
  /// Luby sequence value for restart scheduling.
  static double Luby(double y, int x);
  /// Conflicts allotted to restart number `restart_count` under the
  /// configured restart profile.
  int64_t RestartInterval(int restart_count) const;
  /// Deterministic xorshift64 stream; only called when rng_state_ != 0.
  uint64_t NextRandom() {
    uint64_t x = rng_state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_state_ = x;
    return x;
  }

  bool ok_ = true;
  ClauseArena arena_;
  /// Live clauses (problem + learnt) in insertion order.
  std::vector<CRef> clauses_;
  /// watches_[lit]: watchers of long clauses whose watched literal ¬lit
  /// just became false when lit was enqueued.
  std::vector<std::vector<Watcher>> watches_;
  /// bin_watches_[lit]: binary watchers, processed before long ones.
  std::vector<std::vector<BinWatcher>> bin_watches_;
  std::vector<int8_t> assign_;    // per var: +1 / -1 / 0
  std::vector<CRef> reason_;      // per var: reason clause or kCRefUndef
  std::vector<int> level_;        // per var
  std::vector<double> activity_;  // per var
  std::vector<int8_t> phase_;     // per var: last assigned sign (+1/-1)
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  int64_t num_learnts_ = 0;
  /// Learnt-clause count that triggers the next ReduceDB; adapted as the
  /// formula grows and after each reduction.
  int64_t max_learnts_ = 512;
  VarOrderHeap order_heap_;
  std::vector<int8_t> model_;
  /// Scratch for Analyze/LitRedundant.  Values: 0 unvisited, 1 in the
  /// learnt clause (source), 2 proven removable, 3 proven not removable.
  std::vector<int8_t> seen_;
  std::vector<char> lbd_seen_;  // scratch for LearntLbd/ClauseLbd
  /// Every literal whose seen_ mark must be wiped at the end of Analyze
  /// (learnt literals plus LitRedundant's memoization marks).
  std::vector<Lit> analyze_toclear_;
  /// Explicit DFS frames for LitRedundant: (resume index, literal).
  std::vector<std::pair<int, Lit>> analyze_frames_;
  /// Per-literal generation stamps for MinimizeWithBinaryResolution.
  std::vector<uint64_t> lit_stamp_;
  uint64_t stamp_gen_ = 0;

  Options options_;
  uint64_t rng_state_ = 0;  ///< 0 = randomness disabled

  SolverStats stats_;

  /// Debug-only confinement guard: set while a mutating entry point
  /// (AddClause / SolveWithAssumptions) runs; overlapping entries from a
  /// second thread — or reentrancy — trip an assert.  Sequential hand-off
  /// between threads (the exec layer's fork/join) never overlaps, so it
  /// passes.  See ConfinementGuard in solver.cc.
  mutable std::atomic<bool> in_call_{false};
  friend class ConfinementGuard;
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_SOLVER_H_
