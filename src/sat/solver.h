// A compact CDCL SAT solver: two-watched-literal propagation, 1UIP clause
// learning with backjumping, VSIDS-style activities with phase saving,
// Luby restarts, and activity/LBD-guided learnt-clause deletion.  Supports
// incremental solving under assumptions and incremental clause addition
// between calls — exactly what the currency solvers (CPS/COP/DCIP/CCQA)
// need.
//
// This is the engine realizing the paper's upper bounds (Theorems 3.1,
// 3.4, 3.5): the NP/Σ₂ᵖ search over consistent completions runs as CDCL
// on the order encoding from src/core/encoder.h.
//
// Thread confinement: a Solver is NOT thread-safe — no internal locking,
// and every entry point (NewVar, AddClause, Solve, SolveWithAssumptions,
// ModelValue) mutates or reads search state.  The parallel execution
// layer (src/exec) therefore confines each solver to one task at a time:
// concurrent use of *distinct* solvers is fine, sequential hand-off of
// one solver between threads is fine when a happens-before edge orders
// the calls (ThreadPool::ParallelFor's fork and join provide one), but
// two threads inside one solver at once is a bug.  Debug builds enforce
// this with a cheap overlapping-call assert; ThreadSanitizer (see
// CURRENCY_TSAN) catches the rest.

#ifndef CURRENCY_SRC_SAT_SOLVER_H_
#define CURRENCY_SRC_SAT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/sat/clause.h"

namespace currency::sat {

/// Outcome of a Solve() call.
enum class SolveResult { kSat, kUnsat };

/// Counters exposed for the ablation benchmarks.
struct SolverStats {
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
  int64_t restarts = 0;
  int64_t learnt_clauses = 0;
  int64_t deleted_clauses = 0;
  int64_t reductions = 0;
};

/// A CDCL solver.  Typical use:
///   Solver s;
///   Var a = s.NewVar(), b = s.NewVar();
///   s.AddClause({MakeLit(a), MakeLit(b, true)});
///   if (s.Solve() == SolveResult::kSat) { bool va = s.ModelValue(a); ... }
class Solver {
 public:
  Solver() = default;

  /// Allocates a fresh variable and returns it.
  Var NewVar();

  /// Number of allocated variables.
  int NumVars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (disjunction of literals).  Returns false if the solver
  /// is already in an UNSAT state after level-0 simplification (adding the
  /// empty clause, or a unit that contradicts level-0 knowledge).
  bool AddClause(std::vector<Lit> lits);

  /// Solves the current formula.
  SolveResult Solve() { return SolveWithAssumptions({}); }

  /// Solves under the given assumption literals.  The assumptions are not
  /// added to the formula; they only constrain this call.
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions);

  /// Value of `v` in the most recent satisfying model.  Requires the last
  /// Solve call to have returned kSat.
  bool ModelValue(Var v) const { return model_[v] == 1; }

  /// The full model (indexed by Var) from the last kSat call.
  const std::vector<int8_t>& model() const { return model_; }

  /// True once the formula is known unsatisfiable regardless of assumptions.
  bool IsUnsatForever() const { return !ok_; }

  const SolverStats& stats() const { return stats_; }

 private:
  // --- assignment trail ---
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  /// Current value of a literal: +1 true, -1 false, 0 unassigned.
  int LitValue(Lit l) const {
    int8_t v = assign_[LitVar(l)];
    return LitIsNeg(l) ? -v : v;
  }
  void UncheckedEnqueue(Lit l, int reason_clause);
  void CancelUntil(int level);

  // --- search ---
  /// Propagates all pending assignments; returns conflicting clause index
  /// or -1 if no conflict.
  int Propagate();
  /// 1UIP conflict analysis; fills `learnt` (learnt[0] is the asserting
  /// literal) and returns the backjump level.
  int Analyze(int conflict_clause, std::vector<Lit>* learnt);
  /// Attaches clause `ci` to the watch lists.
  void Attach(int ci);
  /// Picks the next branching literal (VSIDS + saved phase), or kLitUndef.
  Lit PickBranchLit();
  void BumpVar(Var v);
  void BumpClause(int ci);
  void DecayActivities() {
    var_inc_ /= 0.95;
    cla_inc_ /= 0.999;
  }
  /// Literal block distance of a freshly learnt clause: the number of
  /// distinct decision levels among its literals.
  int LearntLbd(const std::vector<Lit>& learnt);
  /// Deletes the lowest-activity half of the deletable learnt clauses
  /// (keeping locked reason clauses, binaries, and low-LBD glue), then
  /// compacts the clause arena and rebuilds the watch lists.  Requires
  /// decision level 0 with propagation complete.  Without this, learnt
  /// clauses and the model enumerator's long blocking-clause runs
  /// (DCIP/CCQA) degrade propagation and memory without bound.
  void ReduceDB();
  /// Runs ReduceDB when the learnt-clause count exceeds the adaptive
  /// limit, growing the limit after each reduction.
  void MaybeReduceDB();
  /// Luby sequence value for restart scheduling.
  static double Luby(double y, int x);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  /// watches_[lit]: clause indices watching `lit` (i.e. containing it among
  /// their first two literals).
  std::vector<std::vector<int>> watches_;
  std::vector<int8_t> assign_;   // per var: +1 / -1 / 0
  std::vector<int> reason_;      // per var: clause index or -1
  std::vector<int> level_;       // per var
  std::vector<double> activity_; // per var
  std::vector<int8_t> phase_;    // per var: last assigned sign (+1/-1)
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  int64_t num_learnts_ = 0;
  /// Learnt-clause count that triggers the next ReduceDB; adapted as the
  /// formula grows and after each reduction.
  int64_t max_learnts_ = 512;
  std::priority_queue<std::pair<double, Var>> order_heap_;
  std::vector<int8_t> model_;
  std::vector<int8_t> seen_;     // scratch for Analyze
  std::vector<char> lbd_seen_;   // scratch for LearntLbd
  SolverStats stats_;

  /// Debug-only confinement guard: set while a mutating entry point
  /// (AddClause / SolveWithAssumptions) runs; overlapping entries from a
  /// second thread — or reentrancy — trip an assert.  Sequential hand-off
  /// between threads (the exec layer's fork/join) never overlaps, so it
  /// passes.  See ConfinementGuard in solver.cc.
  mutable std::atomic<bool> in_call_{false};
  friend class ConfinementGuard;
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_SOLVER_H_
