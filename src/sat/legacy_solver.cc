// Verbatim pre-refactor solver implementation (see legacy_solver.h for
// why it is kept).  Only mechanical renames relative to the original:
// Solver -> LegacySolver, Clause -> LegacyClause, ConfinementGuard
// dropped.

#include "src/sat/legacy_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace currency::sat {

Var LegacySolver::NewVar() {
  Var v = static_cast<Var>(assign_.size());
  assign_.push_back(0);
  reason_.push_back(-1);
  level_.push_back(0);
  activity_.push_back(0.0);
  phase_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_heap_.emplace(0.0, v);
  return v;
}

void LegacySolver::UncheckedEnqueue(Lit l, int reason_clause) {
  Var v = LitVar(l);
  assign_[v] = LitIsNeg(l) ? -1 : 1;
  phase_[v] = assign_[v];
  reason_[v] = reason_clause;
  level_[v] = DecisionLevel();
  trail_.push_back(l);
}

void LegacySolver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  int bound = trail_lim_[level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    Var v = LitVar(trail_[i]);
    assign_[v] = 0;
    reason_[v] = -1;
    order_heap_.emplace(activity_[v], v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

bool LegacySolver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CancelUntil(0);
  // Level-0 simplification: drop false literals, detect satisfied clauses
  // and tautologies, deduplicate.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev != kLitUndef && l == Negate(prev) && LitVar(l) == LitVar(prev)) {
      return true;  // tautology: p ∨ ¬p
    }
    int val = LitValue(l);
    if (val > 0) return true;  // already satisfied at level 0
    if (val < 0) {
      prev = l;
      continue;  // false at level 0: drop
    }
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], -1);
    if (Propagate() != -1) {
      ok_ = false;
      return false;
    }
    return true;
  }
  clauses_.push_back(LegacyClause{std::move(out), false, 0.0});
  Attach(static_cast<int>(clauses_.size()) - 1);
  return true;
}

void LegacySolver::Attach(int ci) {
  const LegacyClause& c = clauses_[ci];
  watches_[Negate(c.lits[0])].push_back(ci);
  watches_[Negate(c.lits[1])].push_back(ci);
}

int LegacySolver::Propagate() {
  int conflict = -1;
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    std::vector<int>& watch_list = watches_[p];
    size_t keep = 0;
    for (size_t wi = 0; wi < watch_list.size(); ++wi) {
      int ci = watch_list[wi];
      LegacyClause& c = clauses_[ci];
      // Ensure the false watched literal (¬p) is at position 1.
      Lit false_lit = Negate(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      // If the other watch is true, the clause is satisfied.
      if (LitValue(c.lits[0]) > 0) {
        watch_list[keep++] = ci;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (LitValue(c.lits[k]) >= 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[Negate(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch moved elsewhere; drop from this list
      // Clause is unit or conflicting.
      watch_list[keep++] = ci;
      if (LitValue(c.lits[0]) < 0) {
        // Conflict: copy the rest of the watch list and bail out.
        for (size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      UncheckedEnqueue(c.lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return conflict;
}

void LegacySolver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.emplace(activity_[v], v);
}

void LegacySolver::BumpClause(int ci) {
  LegacyClause& c = clauses_[ci];
  c.activity += cla_inc_;
  if (c.activity > 1e100) {
    for (LegacyClause& other : clauses_) {
      if (other.learnt) other.activity *= 1e-100;
    }
    cla_inc_ *= 1e-100;
  }
}

int LegacySolver::LearntLbd(const std::vector<Lit>& learnt) {
  // Must run before backjumping: the literals' levels are still current.
  lbd_seen_.assign(static_cast<size_t>(DecisionLevel()) + 1, 0);
  int lbd = 0;
  for (Lit l : learnt) {
    int lv = level_[LitVar(l)];
    if (!lbd_seen_[lv]) {
      lbd_seen_[lv] = 1;
      ++lbd;
    }
  }
  return lbd;
}

void LegacySolver::MaybeReduceDB() {
  // Let the learnt store grow with the problem (a third of the original
  // clauses) before pruning, and raise the bar after every reduction so
  // long runs converge instead of thrashing.
  int64_t problem_clauses =
      static_cast<int64_t>(clauses_.size()) - num_learnts_;
  int64_t limit = std::max(max_learnts_, problem_clauses / 3);
  if (num_learnts_ <= limit) return;
  ReduceDB();
  max_learnts_ += max_learnts_ / 2;
}

void LegacySolver::ReduceDB() {
  if (DecisionLevel() != 0) return;
  // Locked clauses are the reason of a (level-0) trail literal; deleting
  // one would dangle reason_.
  std::vector<char> locked(clauses_.size(), 0);
  for (Lit l : trail_) {
    int r = reason_[LitVar(l)];
    if (r >= 0) locked[r] = 1;
  }
  // Deletable: learnt, not locked, longer than binary, not glue.
  std::vector<int> candidates;
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    const LegacyClause& c = clauses_[ci];
    if (c.learnt && !locked[ci] && c.lits.size() > 2 && c.lbd > 2) {
      candidates.push_back(ci);
    }
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::vector<char> remove(clauses_.size(), 0);
  size_t target = candidates.size() / 2;
  for (size_t k = 0; k < target; ++k) remove[candidates[k]] = 1;
  if (target == 0) return;
  // Compact the clause arena, remap the reasons of the level-0 trail
  // (only locked clauses are reasons, and locked clauses survive), and
  // rebuild the watch lists — Attach re-watches each clause's first two
  // literals, which is exactly the watch invariant Propagate maintains.
  std::vector<int> remap(clauses_.size(), -1);
  size_t out = 0;
  for (size_t ci = 0; ci < clauses_.size(); ++ci) {
    if (remove[ci]) continue;
    remap[ci] = static_cast<int>(out);
    if (out != ci) clauses_[out] = std::move(clauses_[ci]);
    ++out;
  }
  clauses_.resize(out);
  for (Lit l : trail_) {
    int& r = reason_[LitVar(l)];
    if (r >= 0) r = remap[r];
  }
  for (auto& watch_list : watches_) watch_list.clear();
  for (size_t ci = 0; ci < clauses_.size(); ++ci) {
    Attach(static_cast<int>(ci));
  }
  num_learnts_ -= static_cast<int64_t>(target);
  stats_.deleted_clauses += static_cast<int64_t>(target);
  ++stats_.reductions;
}

int LegacySolver::Analyze(int conflict_clause, std::vector<Lit>* learnt) {
  learnt->clear();
  learnt->push_back(kLitUndef);  // placeholder for the asserting literal
  int path_count = 0;
  Lit p = kLitUndef;
  int index = static_cast<int>(trail_.size()) - 1;
  int ci = conflict_clause;
  do {
    if (clauses_[ci].learnt) BumpClause(ci);
    const LegacyClause& c = clauses_[ci];
    for (size_t i = (p == kLitUndef ? 0 : 1); i < c.lits.size(); ++i) {
      Lit q = c.lits[i];
      Var v = LitVar(q);
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] >= DecisionLevel()) {
          ++path_count;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select the next trail literal to resolve on.
    while (!seen_[LitVar(trail_[index])]) --index;
    p = trail_[index];
    --index;
    ci = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = Negate(p);

  // Backjump level: second-highest level in the learnt clause.
  int bj_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    int lv = level_[LitVar((*learnt)[i])];
    if (lv > bj_level) {
      bj_level = lv;
      max_i = i;
    }
  }
  if (learnt->size() > 1) std::swap((*learnt)[1], (*learnt)[max_i]);
  for (size_t i = 1; i < learnt->size(); ++i) seen_[LitVar((*learnt)[i])] = 0;
  return bj_level;
}

Lit LegacySolver::PickBranchLit() {
  while (!order_heap_.empty()) {
    auto [act, v] = order_heap_.top();
    order_heap_.pop();
    if (assign_[v] != 0) continue;
    if (act != activity_[v]) {
      order_heap_.emplace(activity_[v], v);  // stale entry: reinsert fresh
      continue;
    }
    return MakeLit(v, phase_[v] < 0);
  }
  for (Var v = 0; v < NumVars(); ++v) {
    if (assign_[v] == 0) return MakeLit(v, phase_[v] < 0);
  }
  return kLitUndef;
}

double LegacySolver::Luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

SolveResult LegacySolver::SolveWithAssumptions(
    const std::vector<Lit>& assumptions) {
  CancelUntil(0);
  if (!ok_) return SolveResult::kUnsat;
  if (Propagate() != -1) {
    ok_ = false;
    return SolveResult::kUnsat;
  }
  // Incremental workloads (model enumeration, per-pair COP probes) can
  // accumulate learnt clauses across many conflict-light calls that never
  // restart, so the reduction check must also run between calls.
  MaybeReduceDB();

  int restart_count = 0;
  int64_t conflicts_until_restart =
      static_cast<int64_t>(100 * Luby(2.0, restart_count));
  int64_t conflicts_this_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    int confl = Propagate();
    if (confl != -1) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      // A conflict while assumptions are on the trail needs no special
      // analysis: Analyze/backjump as usual (possibly into or below the
      // assumption prefix), and let the decision loop below re-push the
      // undone assumptions.
      int bj = Analyze(confl, &learnt);
      int lbd = LearntLbd(learnt);  // before backjumping: levels current
      CancelUntil(std::max(bj, 0));
      if (learnt.size() == 1) {
        CancelUntil(0);
        UncheckedEnqueue(learnt[0], -1);
      } else {
        clauses_.push_back(LegacyClause{learnt, true, cla_inc_, lbd});
        ++stats_.learnt_clauses;
        ++num_learnts_;
        Attach(static_cast<int>(clauses_.size()) - 1);
        UncheckedEnqueue(learnt[0], static_cast<int>(clauses_.size()) - 1);
      }
      DecayActivities();
      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart =
            static_cast<int64_t>(100 * Luby(2.0, restart_count));
        CancelUntil(0);
        MaybeReduceDB();
      }
      continue;
    }

    // No conflict: push pending assumptions, then branch.
    Lit next = kLitUndef;
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[DecisionLevel()];
      int val = LitValue(a);
      if (val > 0) {
        NewDecisionLevel();  // already satisfied: dummy level
      } else if (val < 0) {
        return SolveResult::kUnsat;  // assumption falsified
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: record the model.
        model_.assign(assign_.begin(), assign_.end());
        CancelUntil(0);
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    NewDecisionLevel();
    UncheckedEnqueue(next, -1);
  }
}

}  // namespace currency::sat
