#include "src/sat/model_enumerator.h"

namespace currency::sat {

Result<int64_t> EnumerateProjectedModels(
    Solver* solver, const std::vector<Var>& projection, int64_t max_models,
    const std::function<bool(const std::vector<bool>&)>& visit) {
  int64_t found = 0;
  std::vector<bool> values(projection.size());
  while (solver->Solve() == SolveResult::kSat) {
    if (found >= max_models) {
      return Status::ResourceExhausted(
          "model enumeration exceeded " + std::to_string(max_models) +
          " projected models");
    }
    for (size_t i = 0; i < projection.size(); ++i) {
      values[i] = solver->ModelValue(projection[i]);
    }
    ++found;
    if (!visit(values)) return found;
    // Block this projected assignment.
    std::vector<Lit> block;
    block.reserve(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) {
      block.push_back(MakeLit(projection[i], values[i]));
    }
    if (!solver->AddClause(std::move(block))) break;  // no models remain
  }
  return found;
}

}  // namespace currency::sat
