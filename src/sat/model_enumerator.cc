#include "src/sat/model_enumerator.h"

#include <string>

namespace currency::sat {

Result<ProjectedModelEnumeration> EnumerateProjectedModels(
    Solver* solver, const std::vector<Var>& projection, int64_t max_models,
    const std::function<bool(const std::vector<bool>&)>& visit) {
  ProjectedModelEnumeration outcome;
  std::vector<bool> values(projection.size());
  for (;;) {
    // Budget check BEFORE the solve: once max_models models are visited
    // and exhaustion has not been proven cheaply (by the blocking clause
    // conflicting at level 0, below), report ResourceExhausted without
    // paying a (max_models+1)-th solve.  Deliberate tradeoff (see the
    // header): that solve could still come back UNSAT and turn an
    // exactly-at-budget enumeration into a success, but the budget is a
    // bound on solver work, so it is not spent on finding out.
    if (outcome.models >= max_models) {
      return Status::ResourceExhausted(
          "model enumeration exceeded " + std::to_string(max_models) +
          " projected models");
    }
    if (solver->Solve() != SolveResult::kSat) break;
    for (size_t i = 0; i < projection.size(); ++i) {
      values[i] = solver->ModelValue(projection[i]);
    }
    ++outcome.models;
    if (!visit(values)) {
      // The caller stopped the enumeration: report it distinguishably and
      // leave this last model unblocked (documented in the header).
      outcome.stopped = true;
      return outcome;
    }
    // Block this projected assignment.
    std::vector<Lit> block;
    block.reserve(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) {
      block.push_back(MakeLit(projection[i], values[i]));
    }
    if (!solver->AddClause(std::move(block))) break;  // no models remain
  }
  return outcome;
}

}  // namespace currency::sat
