#include "src/sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace currency::sat {

namespace {
/// Process-wide test hooks (see the header).  Relaxed atomics: the hooks
/// are flipped from test set-up code, never raced against a running
/// solve.
std::atomic<bool> g_gc_stress{false};
std::atomic<int64_t> g_reduce_limit_override{-1};
}  // namespace

void Solver::SetGcStressForTesting(bool on) {
  g_gc_stress.store(on, std::memory_order_relaxed);
}

void Solver::SetReduceLimitForTesting(int64_t limit) {
  g_reduce_limit_override.store(limit, std::memory_order_relaxed);
}

/// Debug-only thread-confinement guard (see the header's confinement
/// contract): flags the solver busy for the duration of a mutating entry
/// point and asserts no second entry overlaps.  The exchange is relaxed —
/// the guard detects misuse, it does not synchronize; compiled out of the
/// hot path entirely under NDEBUG.
class ConfinementGuard {
#ifndef NDEBUG
 public:
  explicit ConfinementGuard(const Solver& solver) : solver_(solver) {
    bool was_busy = solver_.in_call_.exchange(true, std::memory_order_relaxed);
    assert(!was_busy &&
           "sat::Solver entered from two threads at once (or reentrantly); "
           "solvers must stay confined to one task at a time");
  }
  ~ConfinementGuard() {
    solver_.in_call_.store(false, std::memory_order_relaxed);
  }

 private:
  const Solver& solver_;
#else
 public:
  // Release builds: no state, no work (an unused reference member would
  // trip clang's -Wunused-private-field under -Werror).
  explicit ConfinementGuard(const Solver&) {}
#endif
};

// --- indexed mutable heap ---

void Solver::VarOrderHeap::Insert(Var v, const std::vector<double>& act) {
  if (Contains(v)) return;
  indices_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  Up(indices_[v], act);
}

Var Solver::VarOrderHeap::PopMax(const std::vector<double>& act) {
  Var top = heap_[0];
  indices_[top] = -1;
  Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    indices_[last] = 0;
    Down(0, act);
  }
  return top;
}

void Solver::VarOrderHeap::Up(int i, const std::vector<double>& act) {
  Var v = heap_[i];
  while (i > 0) {
    int parent = (i - 1) >> 1;
    if (act[heap_[parent]] >= act[v]) break;
    heap_[i] = heap_[parent];
    indices_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  indices_[v] = i;
}

void Solver::VarOrderHeap::Down(int i, const std::vector<double>& act) {
  Var v = heap_[i];
  int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && act[heap_[child + 1]] > act[heap_[child]]) ++child;
    if (act[heap_[child]] <= act[v]) break;
    heap_[i] = heap_[child];
    indices_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  indices_[v] = i;
}

// --- solver ---

Var Solver::NewVar() {
  Var v = static_cast<Var>(assign_.size());
  assign_.push_back(0);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  activity_.push_back(0.0);
  int8_t init_phase = -1;
  switch (options_.phase_init) {
    case Options::PhaseInit::kNegative:
      break;
    case Options::PhaseInit::kPositive:
      init_phase = 1;
      break;
    case Options::PhaseInit::kRandom:
      init_phase = (rng_state_ != 0 && (NextRandom() & 1) != 0) ? 1 : -1;
      break;
  }
  phase_.push_back(init_phase);
  seen_.push_back(0);
  lit_stamp_.push_back(0);
  lit_stamp_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  order_heap_.Grow(v + 1);
  order_heap_.Insert(v, activity_);
  return v;
}

void Solver::UncheckedEnqueue(Lit l, CRef reason) {
  Var v = LitVar(l);
  assign_[v] = LitIsNeg(l) ? -1 : 1;
  phase_[v] = assign_[v];
  reason_[v] = reason;
  level_[v] = DecisionLevel();
  trail_.push_back(l);
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  int bound = trail_lim_[level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    Var v = LitVar(trail_[i]);
    assign_[v] = 0;
    reason_[v] = kCRefUndef;
    order_heap_.Insert(v, activity_);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

bool Solver::AddClause(std::vector<Lit> lits) {
  ConfinementGuard guard(*this);
  if (!ok_) return false;
  CancelUntil(0);
  // Level-0 simplification: drop false literals, detect satisfied clauses
  // and tautologies, deduplicate.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev != kLitUndef && l == Negate(prev)) {
      return true;  // tautology: p ∨ ¬p (adjacent after the sort)
    }
    int val = LitValue(l);
    if (val > 0) return true;  // already satisfied at level 0
    if (val < 0) {
      prev = l;
      continue;  // false at level 0: drop
    }
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kCRefUndef);
    if (Propagate() != kCRefUndef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  CRef cref = arena_.Alloc(out, /*learnt=*/false, /*lbd=*/0, /*activity=*/0.0f);
  clauses_.push_back(cref);
  Attach(cref);
  SyncArenaStats();
  return true;
}

void Solver::Attach(CRef cref) {
  ClauseView c = arena_.View(cref);
  Lit l0 = c.lit(0);
  Lit l1 = c.lit(1);
  if (c.size() == 2) {
    bin_watches_[Negate(l0)].push_back(BinWatcher{l1, cref});
    bin_watches_[Negate(l1)].push_back(BinWatcher{l0, cref});
  } else {
    watches_[Negate(l0)].push_back(Watcher{cref, l1});
    watches_[Negate(l1)].push_back(Watcher{cref, l0});
  }
}

CRef Solver::Propagate() {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    // Binary clauses: the watcher IS the clause — skip, enqueue, or
    // conflict without touching the arena.
    {
      const std::vector<BinWatcher>& bins = bin_watches_[p];
      for (size_t wi = 0; wi < bins.size(); ++wi) {
        const BinWatcher w = bins[wi];
        int val = LitValue(w.other);
        if (val < 0) {
          qhead_ = trail_.size();
          return w.cref;
        }
        if (val == 0) UncheckedEnqueue(w.other, w.cref);
      }
    }
    // Long clauses: the blocker check skips satisfied clauses with no
    // arena access; only a failed blocker dereferences the clause.
    std::vector<Watcher>& watch_list = watches_[p];
    size_t keep = 0;
    for (size_t wi = 0; wi < watch_list.size(); ++wi) {
      Watcher w = watch_list[wi];
      // Blocker-aware prefetch: while this watcher is processed, pull
      // the NEXT watcher's clause toward the cache — but only when its
      // blocker fails, because a true blocker means that clause is
      // skipped without ever being dereferenced.  Entries at wi+1 are
      // not yet compacted (keep <= wi), so the read is safe.
      if (wi + 1 < watch_list.size()) {
        const Watcher& next = watch_list[wi + 1];
        if (LitValue(next.blocker) <= 0) arena_.Prefetch(next.cref);
      }
      if (LitValue(w.blocker) > 0) {
        watch_list[keep++] = w;
        continue;
      }
      ClauseView c = arena_.View(w.cref);
      // Ensure the false watched literal (¬p) is at position 1.
      Lit false_lit = Negate(p);
      if (c.lit(0) == false_lit) c.swap_lits(0, 1);
      Lit first = c.lit(0);
      // If the other watch is true, the clause is satisfied; cache it as
      // the new blocker.
      if (first != w.blocker && LitValue(first) > 0) {
        watch_list[keep++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      int size = c.size();
      bool moved = false;
      for (int k = 2; k < size; ++k) {
        if (LitValue(c.lit(k)) >= 0) {
          c.swap_lits(1, k);
          watches_[Negate(c.lit(1))].push_back(Watcher{w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch moved elsewhere; drop from this list
      // Clause is unit or conflicting.
      watch_list[keep++] = Watcher{w.cref, first};
      if (LitValue(first) < 0) {
        // Conflict: copy the rest of the watch list and bail out.
        for (size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return w.cref;
      }
      UncheckedEnqueue(first, w.cref);
    }
    watch_list.resize(keep);
  }
  return kCRefUndef;
}

void Solver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    // Uniform rescale preserves the relative order, so the heap needs no
    // repair.
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.Increased(v, activity_);
}

void Solver::BumpClause(CRef cref) {
  ClauseView c = arena_.View(cref);
  float act = c.activity() + static_cast<float>(cla_inc_);
  c.set_activity(act);
  if (act > 1e20f) {
    for (CRef other : clauses_) {
      ClauseView o = arena_.View(other);
      if (o.learnt()) o.set_activity(o.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

int Solver::ClauseLbd(ClauseView c) {
  lbd_seen_.assign(static_cast<size_t>(DecisionLevel()) + 1, 0);
  int lbd = 0;
  int size = c.size();
  for (int i = 0; i < size; ++i) {
    int lv = level_[LitVar(c.lit(i))];
    if (!lbd_seen_[lv]) {
      lbd_seen_[lv] = 1;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::TouchLearnt(CRef cref) {
  ClauseView c = arena_.View(cref);
  c.set_used(true);
  if (c.tier() == kTierCore) return;  // binaries land here too (tier bits 0)
  // Glucose-style dynamic LBD: a clause resolved in conflict analysis
  // has all literals assigned, so its LBD against the current levels is
  // well defined; an improvement promotes it up the tier ladder.
  int lbd = ClauseLbd(c);
  if (lbd >= c.lbd()) return;
  c.set_lbd(lbd);
  if (lbd <= kCoreLbdMax) {
    MoveTier(c, kTierCore);
  } else if (lbd <= kMidLbdMax && c.tier() == kTierLocal) {
    MoveTier(c, kTierMid);
  }
}

int Solver::LearntLbd(const std::vector<Lit>& learnt) {
  // Must run before backjumping: the literals' levels are still current.
  lbd_seen_.assign(static_cast<size_t>(DecisionLevel()) + 1, 0);
  int lbd = 0;
  for (Lit l : learnt) {
    int lv = level_[LitVar(l)];
    if (!lbd_seen_[lv]) {
      lbd_seen_[lv] = 1;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::MaybeReduceDB() {
  // Let the learnt store grow with the problem (a third of the original
  // clauses) before pruning, and raise the bar after every reduction so
  // long runs converge instead of thrashing.
  int64_t limit;
  int64_t override_limit = g_reduce_limit_override.load(std::memory_order_relaxed);
  if (override_limit >= 0) {
    limit = override_limit;  // test hook: force frequent ReduceDB + GC
  } else {
    int64_t problem_clauses =
        static_cast<int64_t>(clauses_.size()) - num_learnts_;
    limit = std::max(max_learnts_, problem_clauses / 3);
  }
  if (num_learnts_ <= limit) return;
  ReduceDB();
  max_learnts_ += max_learnts_ / 2;
}

void Solver::ReduceDB() {
  if (DecisionLevel() != 0) return;
  // Locked clauses are the reason of a (level-0) trail literal; deleting
  // one would dangle reason_.
  std::vector<CRef> locked;
  for (Lit l : trail_) {
    CRef r = reason_[LitVar(l)];
    if (r != kCRefUndef) locked.push_back(r);
  }
  std::sort(locked.begin(), locked.end());
  auto is_locked = [&locked](CRef c) {
    return std::binary_search(locked.begin(), locked.end(), c);
  };
  // One sweep does the tier maintenance and collects the deletable pool:
  //  * CORE is kept forever.
  //  * TIER2 clauses touched since the last reduction stay (used-bit
  //    rearmed); untouched ones demote to LOCAL and compete there.
  //  * LOCAL clauses that are not locked are the candidates.
  std::vector<CRef> candidates;
  for (CRef cref : clauses_) {
    ClauseView c = arena_.View(cref);
    if (!c.learnt() || c.size() <= 2) continue;
    int tier = c.tier();
    if (tier == kTierCore) continue;
    if (tier == kTierMid) {
      if (c.used()) {
        c.set_used(false);
        continue;
      }
      MoveTier(c, kTierLocal);
      ++stats_.demotions;
      tier = kTierLocal;
    }
    if (!is_locked(cref)) candidates.push_back(cref);
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end(), [this](CRef a, CRef b) {
    return arena_.View(a).activity() < arena_.View(b).activity();
  });
  size_t target = candidates.size() / 2;
  if (target == 0) return;
  // Mark the victims dead, unhook their watchers (in place, preserving
  // the survivors' order), drop them from the clause list, and compact.
  for (size_t k = 0; k < target; ++k) arena_.Free(candidates[k]);
  stats_.tier_local -= static_cast<int64_t>(target);
  auto dead = [this](CRef c) { return arena_.View(c).dead(); };
  for (std::vector<Watcher>& wl : watches_) {
    wl.erase(std::remove_if(wl.begin(), wl.end(),
                            [&dead](const Watcher& w) { return dead(w.cref); }),
             wl.end());
  }
  // Binary clauses are never deletable (size > 2 above), so the binary
  // watch lists need no sweep.
  clauses_.erase(std::remove_if(clauses_.begin(), clauses_.end(), dead),
                 clauses_.end());
  num_learnts_ -= static_cast<int64_t>(target);
  stats_.deleted_clauses += static_cast<int64_t>(target);
  ++stats_.reductions;
  GarbageCollect();
}

void Solver::GarbageCollect() {
  assert(DecisionLevel() == 0);
  arena_.GcBegin();
  // Relocate every live clause in insertion order (keeps the compacted
  // arena in the same layout order every time), then translate all held
  // references in place — order inside every list is preserved, which is
  // what makes relocation bit-for-bit transparent to the search.
  for (CRef& cref : clauses_) cref = arena_.GcRelocate(cref);
  for (Lit l : trail_) {
    CRef& r = reason_[LitVar(l)];
    if (r != kCRefUndef) r = arena_.GcForward(r);
  }
  for (std::vector<Watcher>& wl : watches_) {
    for (Watcher& w : wl) w.cref = arena_.GcForward(w.cref);
  }
  for (std::vector<BinWatcher>& wl : bin_watches_) {
    for (BinWatcher& w : wl) w.cref = arena_.GcForward(w.cref);
  }
  arena_.GcEnd();
  ++stats_.gc_runs;
  SyncArenaStats();
}

int Solver::Analyze(CRef conflict, std::vector<Lit>* learnt) {
  learnt->clear();
  learnt->push_back(kLitUndef);  // placeholder for the asserting literal
  int path_count = 0;
  Lit p = kLitUndef;
  int index = static_cast<int>(trail_.size()) - 1;
  CRef cref = conflict;
  do {
    ClauseView c = arena_.View(cref);
    if (c.learnt()) {
      BumpClause(cref);
      TouchLearnt(cref);
    }
    int size = c.size();
    for (int i = 0; i < size; ++i) {
      Lit q = c.lit(i);
      // Skip the resolved literal by VALUE: long reasons keep it at
      // position 0 (Propagate swaps before enqueueing), but binary
      // reasons keep their stored literal order.  On the first round
      // p == kLitUndef matches nothing and the whole conflict clause is
      // processed.
      if (q == p) continue;
      Var v = LitVar(q);
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] >= DecisionLevel()) {
          ++path_count;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select the next trail literal to resolve on.
    while (!seen_[LitVar(trail_[index])]) --index;
    p = trail_[index];
    --index;
    cref = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = Negate(p);

  // Minimize before LearntLbd/backjump, while the literals' levels are
  // still current.  The asserting literal learnt[0] is never a removal
  // candidate.  analyze_toclear_ collects every var whose seen_ mark
  // must be wiped: the learnt literals themselves plus LitRedundant's
  // removable/failed memoization marks.
  analyze_toclear_.assign(learnt->begin() + 1, learnt->end());
  size_t out = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    Lit l = (*learnt)[i];
    if (reason_[LitVar(l)] == kCRefUndef || !LitRedundant(l)) {
      (*learnt)[out++] = l;
    }
  }
  stats_.minimized_literals += static_cast<int64_t>(learnt->size() - out);
  learnt->resize(out);
  MinimizeWithBinaryResolution(learnt);

  // Backjump level: second-highest level in the learnt clause.
  int bj_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    int lv = level_[LitVar((*learnt)[i])];
    if (lv > bj_level) {
      bj_level = lv;
      max_i = i;
    }
  }
  if (learnt->size() > 1) std::swap((*learnt)[1], (*learnt)[max_i]);
  for (Lit l : analyze_toclear_) seen_[LitVar(l)] = 0;
  return bj_level;
}

bool Solver::LitRedundant(Lit p) {
  // seen_ marks: 1 = in the learnt clause (trivially supported), 2 =
  // proven removable, 3 = proven not removable.  Marks persist across
  // the LitRedundant calls of one Analyze (memoization) and are wiped
  // via analyze_toclear_ at its end.
  constexpr int8_t kSource = 1, kRemovable = 2, kFailed = 3;
  assert(reason_[LitVar(p)] != kCRefUndef);
  analyze_frames_.clear();
  Lit cur = p;
  int idx = 0;
  while (true) {
    ClauseView c = arena_.View(reason_[LitVar(cur)]);
    if (idx < c.size()) {
      Lit l = c.lit(idx++);
      Var v = LitVar(l);
      // Skip the implied literal itself (by VALUE — binary reasons keep
      // their stored order), root-level facts, and already-supported
      // antecedents.
      if (v == LitVar(cur) || level_[v] == 0 || seen_[v] == kSource ||
          seen_[v] == kRemovable) {
        continue;
      }
      if (reason_[v] == kCRefUndef || seen_[v] == kFailed) {
        // Dead end: a decision (or known-failed) antecedent.  Everything
        // on the open DFS path inherits the failure; source marks stay.
        if (seen_[LitVar(cur)] == 0) {
          seen_[LitVar(cur)] = kFailed;
          analyze_toclear_.push_back(cur);
        }
        for (const auto& frame : analyze_frames_) {
          Var fv = LitVar(frame.second);
          if (seen_[fv] == 0) {
            seen_[fv] = kFailed;
            analyze_toclear_.push_back(frame.second);
          }
        }
        return false;
      }
      // Descend into l's reason.
      analyze_frames_.emplace_back(idx, cur);
      cur = l;
      idx = 0;
    } else {
      // Every antecedent of cur is supported: cur is removable.
      if (seen_[LitVar(cur)] == 0) {
        seen_[LitVar(cur)] = kRemovable;
        analyze_toclear_.push_back(cur);
      }
      if (analyze_frames_.empty()) return true;
      idx = analyze_frames_.back().first;
      cur = analyze_frames_.back().second;
      analyze_frames_.pop_back();
    }
  }
}

void Solver::MinimizeWithBinaryResolution(std::vector<Lit>* learnt) {
  // Glucose-style: bounded to shortish clauses where the scan pays off.
  if (learnt->size() <= 2 || learnt->size() > 30) return;
  Lit asserting = (*learnt)[0];
  const std::vector<BinWatcher>& bins = bin_watches_[Negate(asserting)];
  if (bins.empty()) return;
  // Stamp generation g marks "present in the learnt clause"; g+1 marks
  // "subsumed away by a binary".
  uint64_t gen = (stamp_gen_ += 2);
  for (size_t i = 1; i < learnt->size(); ++i) lit_stamp_[(*learnt)[i]] = gen;
  int removed = 0;
  for (const BinWatcher& w : bins) {
    // w encodes the binary clause (asserting ∨ w.other); resolving it
    // against (asserting ∨ ¬w.other ∨ R) drops ¬w.other.
    Lit q = Negate(w.other);
    if (lit_stamp_[q] == gen) {
      lit_stamp_[q] = gen + 1;
      ++removed;
    }
  }
  if (removed == 0) return;
  size_t out = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    Lit l = (*learnt)[i];
    if (lit_stamp_[l] != gen + 1) (*learnt)[out++] = l;
  }
  assert(out + static_cast<size_t>(removed) == learnt->size());
  learnt->resize(out);
  stats_.minimized_literals += removed;
}

Lit Solver::PickBranchLit() {
  // Diversified solvers (rng_seed != 0) occasionally branch on a random
  // variable instead of the VSIDS maximum — the classic portfolio
  // decorrelator.  The default configuration never reaches this block,
  // keeping the undiversified search bit-identical.
  if (rng_state_ != 0 && (NextRandom() & 63u) == 0 && NumVars() > 0) {
    Var v = static_cast<Var>(NextRandom() % static_cast<uint64_t>(NumVars()));
    if (assign_[v] == 0) return MakeLit(v, phase_[v] < 0);
  }
  while (!order_heap_.Empty()) {
    Var v = order_heap_.PopMax(activity_);
    if (assign_[v] == 0) return MakeLit(v, phase_[v] < 0);
  }
  for (Var v = 0; v < NumVars(); ++v) {
    if (assign_[v] == 0) return MakeLit(v, phase_[v] < 0);
  }
  return kLitUndef;
}

double Solver::Luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

int64_t Solver::RestartInterval(int restart_count) const {
  switch (options_.restart_profile) {
    case Options::RestartProfile::kFastLuby:
      return static_cast<int64_t>(32 * Luby(2.0, restart_count));
    case Options::RestartProfile::kGeometric:
      return static_cast<int64_t>(
          100.0 * std::pow(1.5, std::min(restart_count, 40)));
    case Options::RestartProfile::kLuby:
      break;
  }
  return static_cast<int64_t>(100 * Luby(2.0, restart_count));
}

std::optional<SolveResult> Solver::SolveLimited(
    const std::vector<Lit>& assumptions, const std::atomic<bool>* stop) {
  ConfinementGuard guard(*this);
  CancelUntil(0);
  if (!ok_) return SolveResult::kUnsat;
  if (Propagate() != kCRefUndef) {
    ok_ = false;
    return SolveResult::kUnsat;
  }
  // Incremental workloads (model enumeration, per-pair COP probes) can
  // accumulate learnt clauses across many conflict-light calls that never
  // restart, so the reduction check must also run between calls.
  MaybeReduceDB();
  if (g_gc_stress.load(std::memory_order_relaxed)) GarbageCollect();

  int restart_count = 0;
  int64_t conflicts_until_restart = RestartInterval(restart_count);
  int64_t conflicts_this_restart = 0;
  std::vector<Lit> learnt;
  // Cooperative interruption: poll `stop` every few hundred loop
  // iterations (each runs a full Propagate, so checks stay off the hot
  // path).  An interrupted solve unwinds to level 0 and reports "no
  // verdict"; the learnt clauses it accumulated are implied, so the
  // solver remains sound for later calls.
  constexpr int kStopCheckInterval = 256;
  int until_stop_check = kStopCheckInterval;

  while (true) {
    if (stop != nullptr && --until_stop_check <= 0) {
      until_stop_check = kStopCheckInterval;
      if (stop->load(std::memory_order_relaxed)) {
        CancelUntil(0);
        return std::nullopt;
      }
    }
    CRef confl = Propagate();
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      // A conflict while assumptions are on the trail needs no special
      // analysis: Analyze/backjump as usual (possibly into or below the
      // assumption prefix), and let the decision loop below re-push the
      // undone assumptions.  If the learnt clause (or its propagations)
      // falsified an assumption, the re-push finds it with value < 0 and
      // reports UNSAT for this call — the same outcome MiniSat reaches
      // via its analyzeFinal guard, without a separate code path.  The
      // metamorphic property test in tests/sat_test.cc checks this
      // against adding the assumptions as unit clauses to a fresh solver.
      int bj = Analyze(confl, &learnt);
      int lbd = LearntLbd(learnt);  // before backjumping: levels current
      CancelUntil(std::max(bj, 0));
      if (learnt.size() == 1) {
        CancelUntil(0);
        UncheckedEnqueue(learnt[0], kCRefUndef);
      } else {
        CRef cref = arena_.Alloc(learnt, /*learnt=*/true, lbd,
                                 static_cast<float>(cla_inc_));
        clauses_.push_back(cref);
        ++stats_.learnt_clauses;
        ++num_learnts_;
        if (learnt.size() > 2) {
          // Initial tier by LBD at learn time; binaries stay outside the
          // tiered DB (they are never deletable).
          int tier = lbd <= kCoreLbdMax  ? kTierCore
                     : lbd <= kMidLbdMax ? kTierMid
                                         : kTierLocal;
          arena_.View(cref).set_tier(tier);
          ++*TierCounter(tier);
        }
        Attach(cref);
        UncheckedEnqueue(learnt[0], cref);
        SyncArenaStats();
      }
      DecayActivities();
      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart = RestartInterval(restart_count);
        CancelUntil(0);
        MaybeReduceDB();
        if (g_gc_stress.load(std::memory_order_relaxed)) GarbageCollect();
      }
      continue;
    }

    // No conflict: push pending assumptions, then branch.
    Lit next = kLitUndef;
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[DecisionLevel()];
      int val = LitValue(a);
      if (val > 0) {
        NewDecisionLevel();  // already satisfied: dummy level
      } else if (val < 0) {
        return SolveResult::kUnsat;  // assumption falsified
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: record the model.
        model_.assign(assign_.begin(), assign_.end());
        CancelUntil(0);
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    NewDecisionLevel();
    UncheckedEnqueue(next, kCRefUndef);
  }
}

}  // namespace currency::sat
