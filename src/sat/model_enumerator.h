// Model enumeration with projection: enumerate all assignments to a chosen
// subset of variables that extend to a model, blocking each one found.
//
// CCQA (Theorem 3.5) needs the set of *distinct current instances* over all
// consistent completions; projecting models onto the "is-last" selector
// variables makes the enumeration proportional to that set rather than to
// the (factorially larger) set of completions.

#ifndef CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_
#define CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/sat/solver.h"

namespace currency::sat {

/// Outcome of EnumerateProjectedModels: how many projected models were
/// visited, and whether the enumeration ended because `visit` asked it to
/// (as opposed to the solution space being exhausted).  The distinction
/// matters to callers that resume or reason about completeness: on a
/// `stopped` outcome the last visited model is NOT blocked in the solver,
/// so a subsequent enumeration on the same solver would revisit it.
struct ProjectedModelEnumeration {
  int64_t models = 0;
  bool stopped = false;
};

/// Enumerates assignments to `projection` that extend to models of `solver`.
///
/// Calls `visit` once per distinct projected assignment (a vector of bools
/// parallel to `projection`); enumeration stops early if `visit` returns
/// false (reported as `stopped` in the outcome).  `max_models` budgets the
/// enumeration: the budget is checked BEFORE each solve, so reaching
/// `max_models` visited models without the last blocking clause proving
/// exhaustion at level 0 returns ResourceExhausted without paying an extra
/// solve — which also means a space of exactly `max_models` models whose
/// emptiness only a final solve could prove reports ResourceExhausted.
///
/// The solver is mutated (blocking clauses are added); callers that need
/// the original formula afterwards should enumerate on a copy.  The
/// blocking clauses enter the arena as PROBLEM clauses, so ReduceDB can
/// never delete one (only learnt clauses are deletable) — long
/// enumeration runs stay sound across any number of reduction + GC
/// cycles, at the cost of growing the problem store; the adaptive
/// reduction limit accounts for that growth (see Solver::MaybeReduceDB).
Result<ProjectedModelEnumeration> EnumerateProjectedModels(
    Solver* solver, const std::vector<Var>& projection, int64_t max_models,
    const std::function<bool(const std::vector<bool>&)>& visit);

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_
