// Model enumeration with projection: enumerate all assignments to a chosen
// subset of variables that extend to a model, blocking each one found.
//
// CCQA (Theorem 3.5) needs the set of *distinct current instances* over all
// consistent completions; projecting models onto the "is-last" selector
// variables makes the enumeration proportional to that set rather than to
// the (factorially larger) set of completions.

#ifndef CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_
#define CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/sat/solver.h"

namespace currency::sat {

/// Enumerates assignments to `projection` that extend to models of `solver`.
///
/// Calls `visit` once per distinct projected assignment (a vector of bools
/// parallel to `projection`); enumeration stops early if `visit` returns
/// false.  `max_models` bounds the enumeration; exceeding it returns
/// ResourceExhausted.  Returns the number of projected models visited.
///
/// The solver is mutated (blocking clauses are added); callers that need
/// the original formula afterwards should enumerate on a copy.
Result<int64_t> EnumerateProjectedModels(
    Solver* solver, const std::vector<Var>& projection, int64_t max_models,
    const std::function<bool(const std::vector<bool>&)>& visit);

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_MODEL_ENUMERATOR_H_
