// The pre-arena CDCL solver, preserved verbatim as a reference engine.
//
// This is the solver exactly as it shipped before the arena-backed
// rewrite of src/sat/solver.h: one heap-allocated std::vector<Lit> per
// clause, watch lists of bare clause indices with no blocker literals,
// binary clauses paying the full clause dereference, and a lazy
// std::priority_queue VSIDS order (stale entries re-pushed on every
// bump).  It exists for two purposes only:
//
//  * bench/bench_sat_core runs the same CNF workload through this engine
//    and the arena engine in one process, so the reported speedup is a
//    measured pre-refactor baseline, not a snapshot that rots;
//  * tests/sat_metamorphic_test.cc replays every clause and assumption
//    stream through both engines and asserts the verdicts agree (and
//    that both models satisfy the formula), giving the arena engine an
//    independent same-algorithm-family oracle.
//
// It is NOT part of the production pipeline: core/encoder and everything
// above it use sat::Solver.  Do not "improve" this class — its value is
// being the unchanged baseline.  (The debug thread-confinement guard of
// the original was dropped: this engine is only ever driven from one
// test or bench thread.)

#ifndef CURRENCY_SRC_SAT_LEGACY_SOLVER_H_
#define CURRENCY_SRC_SAT_LEGACY_SOLVER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sat/clause.h"
#include "src/sat/solver.h"

namespace currency::sat {

/// A disjunction of literals with its own heap-allocated literal vector —
/// the pre-arena clause representation.
struct LegacyClause {
  std::vector<Lit> lits;
  bool learnt = false;
  /// Bumped when the clause participates in conflict analysis; learnt
  /// clauses with low activity are candidates for deletion (ReduceDB).
  double activity = 0.0;
  /// Literal block distance at learn time: number of distinct decision
  /// levels among the clause's literals.  Low-LBD ("glue") clauses are
  /// never deleted.
  int lbd = 0;
};

/// The pre-refactor CDCL solver (see the file comment).  Public API is
/// the subset of sat::Solver the reference workloads need.
class LegacySolver {
 public:
  LegacySolver() = default;

  Var NewVar();
  int NumVars() const { return static_cast<int>(assign_.size()); }
  bool AddClause(std::vector<Lit> lits);
  SolveResult Solve() { return SolveWithAssumptions({}); }
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions);
  bool ModelValue(Var v) const { return model_[v] == 1; }
  const std::vector<int8_t>& model() const { return model_; }
  bool IsUnsatForever() const { return !ok_; }
  const SolverStats& stats() const { return stats_; }

 private:
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }
  int LitValue(Lit l) const {
    int8_t v = assign_[LitVar(l)];
    return LitIsNeg(l) ? -v : v;
  }
  void UncheckedEnqueue(Lit l, int reason_clause);
  void CancelUntil(int level);
  int Propagate();
  int Analyze(int conflict_clause, std::vector<Lit>* learnt);
  void Attach(int ci);
  Lit PickBranchLit();
  void BumpVar(Var v);
  void BumpClause(int ci);
  void DecayActivities() {
    var_inc_ /= 0.95;
    cla_inc_ /= 0.999;
  }
  int LearntLbd(const std::vector<Lit>& learnt);
  void ReduceDB();
  void MaybeReduceDB();
  static double Luby(double y, int x);

  bool ok_ = true;
  std::vector<LegacyClause> clauses_;
  /// watches_[lit]: clause indices watching `lit` (i.e. containing it among
  /// their first two literals).
  std::vector<std::vector<int>> watches_;
  std::vector<int8_t> assign_;    // per var: +1 / -1 / 0
  std::vector<int> reason_;       // per var: clause index or -1
  std::vector<int> level_;        // per var
  std::vector<double> activity_;  // per var
  std::vector<int8_t> phase_;     // per var: last assigned sign (+1/-1)
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  int64_t num_learnts_ = 0;
  int64_t max_learnts_ = 512;
  std::priority_queue<std::pair<double, Var>> order_heap_;
  std::vector<int8_t> model_;
  std::vector<int8_t> seen_;    // scratch for Analyze
  std::vector<char> lbd_seen_;  // scratch for LearntLbd
  SolverStats stats_;
};

}  // namespace currency::sat

#endif  // CURRENCY_SRC_SAT_LEGACY_SOLVER_H_
