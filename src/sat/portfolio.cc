#include "src/sat/portfolio.h"

#include <atomic>
#include <cassert>
#include <optional>
#include <utility>

namespace currency::sat {

std::vector<Solver::Options> Portfolio::DiversifiedConfigs(int num_rivals) {
  using PhaseInit = Solver::Options::PhaseInit;
  using RestartProfile = Solver::Options::RestartProfile;
  // A fixed decorrelation table: opposite phases first (the cheapest,
  // strongest diversification on the order encoding, where SAT models
  // cluster by polarity), then randomized phases under different restart
  // profiles.  Seeds are arbitrary nonzero constants; rivals beyond the
  // table repeat it with fresh seeds.
  static constexpr struct {
    PhaseInit phase;
    RestartProfile restarts;
  } kTable[] = {
      {PhaseInit::kPositive, RestartProfile::kLuby},
      {PhaseInit::kRandom, RestartProfile::kFastLuby},
      {PhaseInit::kRandom, RestartProfile::kGeometric},
      {PhaseInit::kNegative, RestartProfile::kFastLuby},
      {PhaseInit::kPositive, RestartProfile::kGeometric},
      {PhaseInit::kRandom, RestartProfile::kLuby},
  };
  constexpr int kTableSize = static_cast<int>(sizeof(kTable) / sizeof(kTable[0]));
  std::vector<Solver::Options> configs;
  configs.reserve(static_cast<size_t>(num_rivals > 0 ? num_rivals : 0));
  for (int k = 0; k < num_rivals; ++k) {
    const auto& row = kTable[k % kTableSize];
    Solver::Options options;
    options.rng_seed = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(k + 1);
    options.phase_init = row.phase;
    options.restart_profile = row.restarts;
    configs.push_back(options);
  }
  return configs;
}

int Portfolio::RaceWidth() const {
  if (!options_.enabled || pool_ == nullptr || pool_->num_threads() <= 1) {
    return 1;
  }
  int width = options_.num_solvers;
  if (width > pool_->num_threads()) width = pool_->num_threads();
  return width < 1 ? 1 : width;
}

Result<SolveResult> Portfolio::Solve(const std::vector<Lit>& assumptions) {
  const int width = RaceWidth();
  if (width <= 1) {
    // Pass-through: no rivals, no region, no stop polling — portfolio-on
    // at one thread IS the single-solver path.
    return primary_->SolveWithAssumptions(assumptions);
  }
  if (!spawned_) {
    std::vector<Solver::Options> configs = DiversifiedConfigs(width - 1);
    rivals_.reserve(configs.size());
    for (int k = 0; k < static_cast<int>(configs.size()); ++k) {
      ASSIGN_OR_RETURN(Solver * rival, spawn_(k + 1, configs[k]));
      rivals_.push_back(rival);
    }
    spawned_ = true;
  }
  std::atomic<bool> stop{false};
  exec::CancellationToken cancel;
  std::vector<std::optional<SolveResult>> verdicts(
      static_cast<size_t>(width));
  Status status = pool_->ParallelFor(
      width,
      [&](int k) -> Status {
        Solver* solver = k == 0 ? primary_ : rivals_[k - 1];
        std::optional<SolveResult> verdict =
            solver->SolveLimited(assumptions, &stop);
        if (verdict.has_value()) {
          verdicts[static_cast<size_t>(k)] = verdict;
          stop.store(true, std::memory_order_relaxed);
          cancel.Cancel();
        }
        return Status::OK();
      },
      &cancel);
  RETURN_IF_ERROR(status);
  // At least one task ran to completion (the stop flag only rises once a
  // verdict exists), and sound solvers over one formula cannot disagree.
  std::optional<SolveResult> verdict;
  int finished = 0;
  for (const std::optional<SolveResult>& v : verdicts) {
    if (!v.has_value()) continue;
    ++finished;
    if (!verdict.has_value()) {
      verdict = v;
    } else {
      assert(*verdict == *v && "portfolio solvers disagreed on a verdict");
    }
  }
  assert(finished > 0);
  primary_->RecordPortfolioRace(width - finished);
  return *verdict;
}

}  // namespace currency::sat
