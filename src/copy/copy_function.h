// Copy functions (Section 2): a partial mapping ρ of signature
// R1[A⃗] ⇐ R2[B⃗] from tuples of a target instance D1 to tuples of a source
// instance D2, recording that t[A⃗] was imported from ρ(t)[B⃗].
//
// Two conditions attach to ρ:
//   * the copying condition t[A_i] = ρ(t)[B_i] (checked by Validate), and
//   * ≺-compatibility: currency orders on copied values in the source must
//     be inherited by the target (checked against concrete orders here and
//     enforced symbolically by core/encoder and core/chase).

#ifndef CURRENCY_SRC_COPY_COPY_FUNCTION_H_
#define CURRENCY_SRC_COPY_COPY_FUNCTION_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/order/partial_order.h"
#include "src/relational/relation.h"

namespace currency::copy {

/// The signature R_target[A⃗] ⇐ R_source[B⃗] of a copy function:
/// `target_attrs[i]` is copied from `source_attrs[i]`.
struct CopySignature {
  std::string target_relation;
  std::vector<std::string> target_attrs;
  std::string source_relation;
  std::vector<std::string> source_attrs;

  /// "Dept[mgrAddr] <= Emp[address]".
  std::string ToString() const;
};

/// A copy function: a signature plus the partial mapping target tuple ->
/// source tuple.
class CopyFunction {
 public:
  CopyFunction() = default;
  explicit CopyFunction(CopySignature signature)
      : signature_(std::move(signature)) {}

  const CopySignature& signature() const { return signature_; }

  /// Maps target tuple `t` to source tuple `s`.  Remapping an already
  /// mapped tuple fails.
  Status Map(TupleId t, TupleId s);

  /// The source tuple for `t`, or -1 when ρ(t) is undefined.
  TupleId SourceOf(TupleId t) const;

  /// Number of mapped tuples |ρ|.
  int size() const { return static_cast<int>(mapping_.size()); }

  const std::map<TupleId, TupleId>& mapping() const { return mapping_; }

  /// Resolves the signature against the given schemas: returns the list of
  /// (target_attr_index, source_attr_index) pairs, or an error if a name
  /// is unknown or the attribute lists have different lengths.
  Result<std::vector<std::pair<AttrIndex, AttrIndex>>> ResolveAttrs(
      const Schema& target, const Schema& source) const;

  /// Checks the copying condition: for each mapped t -> s and each
  /// signature position i, target.tuple(t)[A_i] == source.tuple(s)[B_i].
  Status Validate(const Relation& target, const Relation& source) const;

  /// True iff the signature covers every data attribute of `target`
  /// (required for a copy function to be extendable, Section 4).
  bool CoversAllTargetAttributes(const Schema& target) const;

  /// Checks ≺-compatibility against concrete currency orders
  /// (`target_orders` / `source_orders` are indexed by attribute): for all
  /// mapped t1 -> s1, t2 -> s2 with matching EIDs, s1 ≺_{B_i} s2 must imply
  /// t1 ≺_{A_i} t2.  Used by completion validation and the brute-force
  /// oracle.
  Result<bool> IsOrderCompatible(
      const Relation& target, const std::vector<PartialOrder>& target_orders,
      const Relation& source,
      const std::vector<PartialOrder>& source_orders) const;

 private:
  CopySignature signature_;
  std::map<TupleId, TupleId> mapping_;
};

}  // namespace currency::copy

#endif  // CURRENCY_SRC_COPY_COPY_FUNCTION_H_
