#include "src/copy/copy_function.h"

#include <algorithm>
#include <sstream>

#include "src/common/strings.h"

namespace currency::copy {

std::string CopySignature::ToString() const {
  std::ostringstream os;
  os << target_relation << "[" << Join(target_attrs, ", ") << "] <= "
     << source_relation << "[" << Join(source_attrs, ", ") << "]";
  return os.str();
}

Status CopyFunction::Map(TupleId t, TupleId s) {
  auto [it, inserted] = mapping_.emplace(t, s);
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition(
        "tuple " + std::to_string(t) + " is already mapped by " +
        signature_.ToString());
  }
  return Status::OK();
}

TupleId CopyFunction::SourceOf(TupleId t) const {
  auto it = mapping_.find(t);
  return it == mapping_.end() ? -1 : it->second;
}

Result<std::vector<std::pair<AttrIndex, AttrIndex>>> CopyFunction::ResolveAttrs(
    const Schema& target, const Schema& source) const {
  if (signature_.target_attrs.size() != signature_.source_attrs.size()) {
    return Status::InvalidArgument("signature attribute lists differ in size: " +
                                   signature_.ToString());
  }
  std::vector<std::pair<AttrIndex, AttrIndex>> out;
  for (size_t i = 0; i < signature_.target_attrs.size(); ++i) {
    ASSIGN_OR_RETURN(AttrIndex a, target.IndexOf(signature_.target_attrs[i]));
    ASSIGN_OR_RETURN(AttrIndex b, source.IndexOf(signature_.source_attrs[i]));
    out.emplace_back(a, b);
  }
  return out;
}

Status CopyFunction::Validate(const Relation& target,
                              const Relation& source) const {
  ASSIGN_OR_RETURN(auto attrs,
                   ResolveAttrs(target.schema(), source.schema()));
  for (const auto& [t, s] : mapping_) {
    if (t < 0 || t >= target.size()) {
      return Status::InvalidArgument("mapped target tuple out of range");
    }
    if (s < 0 || s >= source.size()) {
      return Status::InvalidArgument("mapped source tuple out of range");
    }
    for (const auto& [a, b] : attrs) {
      if (!(target.tuple(t).at(a) == source.tuple(s).at(b))) {
        return Status::FailedPrecondition(
            "copying condition violated: " + signature_.ToString() +
            " maps tuple " + target.tuple(t).ToString() + " to " +
            source.tuple(s).ToString() + " but values differ on position " +
            std::to_string(a));
      }
    }
  }
  return Status::OK();
}

bool CopyFunction::CoversAllTargetAttributes(const Schema& target) const {
  for (int i = 1; i < target.arity(); ++i) {
    const std::string& name = target.attribute_name(i);
    if (std::find(signature_.target_attrs.begin(),
                  signature_.target_attrs.end(),
                  name) == signature_.target_attrs.end()) {
      return false;
    }
  }
  return true;
}

Result<bool> CopyFunction::IsOrderCompatible(
    const Relation& target, const std::vector<PartialOrder>& target_orders,
    const Relation& source,
    const std::vector<PartialOrder>& source_orders) const {
  ASSIGN_OR_RETURN(auto attrs,
                   ResolveAttrs(target.schema(), source.schema()));
  for (const auto& [t1, s1] : mapping_) {
    for (const auto& [t2, s2] : mapping_) {
      if (t1 == t2 || s1 == s2) continue;
      if (!(target.tuple(t1).eid() == target.tuple(t2).eid())) continue;
      if (!(source.tuple(s1).eid() == source.tuple(s2).eid())) continue;
      for (const auto& [a, b] : attrs) {
        if (source_orders[b].Less(s1, s2) && !target_orders[a].Less(t1, t2)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace currency::copy
