#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace currency::obs {

namespace {

/// Canonical form of a label set: sorted by key, serialized as
/// k1="v1",k2="v2" with Prometheus escaping (backslash, quote, newline).
/// Doubles as the series map key and the exposition body.
std::string CanonicalLabelString(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out;
  for (const Label& l : sorted) {
    if (!out.empty()) out += ',';
    out += l.key;
    out += "=\"";
    for (char c : l.value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const Labels& OverflowLabels() {
  static const Labels labels = {{"overflow", "true"}};
  return labels;
}

}  // namespace

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(int64_t value) {
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();  // first bound >= value ⇒ v <= bounds[i]
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t Histogram::ApproxQuantile(double q) const {
  std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0;
  // Nearest-rank: the smallest rank r with r >= q * total, clamped to
  // [1, total] so q=0 and q=1 both stay in range.
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::max<int64_t>(1, std::min(rank, total));
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

const std::vector<int64_t>& LatencyBucketsNs() {
  static const std::vector<int64_t> buckets = [] {
    std::vector<int64_t> b;
    // 1-2-5 per decade, 1 µs .. 10 s.
    for (int64_t decade = 1'000; decade <= 1'000'000'000; decade *= 10) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
    }
    b.push_back(10'000'000'000);
    return b;
  }();
  return buckets;
}

Registry* Registry::Default() {
  static Registry* registry = new Registry();
  return registry;
}

Registry::Series* Registry::GetSeries(const std::string& name, Kind kind,
                                      const Labels& labels,
                                      std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, created] = families_.try_emplace(name);
  Family& family = fit->second;
  if (created) {
    family.kind = kind;
    if (kind == Kind::kHistogram) {
      family.bounds = bounds.empty() ? LatencyBucketsNs() : std::move(bounds);
    }
  } else if (family.kind != kind) {
    return nullptr;  // kind mismatch: the caller gets the dead instrument
  }
  std::string key = CanonicalLabelString(labels);
  auto sit = family.series.find(key);
  if (sit == family.series.end()) {
    const Labels* use = &labels;
    if (static_cast<int>(family.series.size()) >= kMaxSeriesPerFamily) {
      // Cardinality cap: coalesce into the overflow series (creating it
      // once; it does not count against the cap a second time).
      use = &OverflowLabels();
      key = CanonicalLabelString(*use);
      sit = family.series.find(key);
    }
    if (sit == family.series.end()) {
      auto series = std::make_unique<Series>();
      series->labels = *use;
      std::sort(series->labels.begin(), series->labels.end(),
                [](const Label& a, const Label& b) { return a.key < b.key; });
      switch (kind) {
        case Kind::kCounter:
          series->counter = std::make_unique<Counter>();
          break;
        case Kind::kGauge:
          series->gauge = std::make_unique<Gauge>();
          break;
        case Kind::kHistogram:
          series->histogram.reset(new Histogram(family.bounds));
          break;
      }
      sit = family.series.emplace(std::move(key), std::move(series)).first;
    }
  }
  return sit->second.get();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  Series* s = GetSeries(name, Kind::kCounter, labels, {});
  if (s != nullptr) return s->counter.get();
  static Counter* dead = new Counter();  // kind-mismatch sink, never exposed
  return dead;
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  Series* s = GetSeries(name, Kind::kGauge, labels, {});
  if (s != nullptr) return s->gauge.get();
  static Gauge* dead = new Gauge();
  return dead;
}

Histogram* Registry::GetHistogram(const std::string& name, const Labels& labels,
                                  std::vector<int64_t> bounds) {
  Series* s = GetSeries(name, Kind::kHistogram, labels, std::move(bounds));
  if (s != nullptr) return s->histogram.get();
  static Histogram* dead = new Histogram(LatencyBucketsNs());
  return dead;
}

std::string Registry::ExposeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + ' ';
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [label_string, series] : family.series) {
      if (family.kind == Kind::kHistogram) {
        const Histogram& h = *series->histogram;
        std::vector<int64_t> counts = h.BucketCounts();
        int64_t cumulative = 0;
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += counts[i];
          std::string le = i < h.bounds().size()
                               ? std::to_string(h.bounds()[i])
                               : std::string("+Inf");
          out += name + "_bucket{" + label_string +
                 (label_string.empty() ? "" : ",") + "le=\"" + le + "\"} " +
                 std::to_string(cumulative) + '\n';
        }
        std::string suffix =
            label_string.empty() ? "" : ('{' + label_string + '}');
        out += name + "_sum" + suffix + ' ' + std::to_string(h.Sum()) + '\n';
        out +=
            name + "_count" + suffix + ' ' + std::to_string(h.Count()) + '\n';
      } else {
        int64_t value = family.kind == Kind::kCounter
                            ? series->counter->Value()
                            : series->gauge->Value();
        out += name;
        if (!label_string.empty()) out += '{' + label_string + '}';
        out += ' ' + std::to_string(value) + '\n';
      }
    }
  }
  return out;
}

std::string Registry::ExposeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\": [";
  bool first = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_string, series] : family.series) {
      (void)label_string;
      if (!first) out += ',';
      first = false;
      out += "\n  {\"name\": \"" + JsonEscape(name) + "\", \"type\": \"";
      switch (family.kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "histogram";
          break;
      }
      out += "\", \"labels\": {";
      for (size_t i = 0; i < series->labels.size(); ++i) {
        if (i > 0) out += ", ";
        out += '"' + JsonEscape(series->labels[i].key) + "\": \"" +
               JsonEscape(series->labels[i].value) + '"';
      }
      out += '}';
      if (family.kind == Kind::kHistogram) {
        const Histogram& h = *series->histogram;
        std::vector<int64_t> counts = h.BucketCounts();
        out += ", \"count\": " + std::to_string(h.Count()) +
               ", \"sum\": " + std::to_string(h.Sum()) + ", \"buckets\": [";
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(counts[i]);
        }
        out += "], \"bounds\": [";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(h.bounds()[i]);
        }
        out += ']';
      } else {
        int64_t value = family.kind == Kind::kCounter
                            ? series->counter->Value()
                            : series->gauge->Value();
        out += ", \"value\": " + std::to_string(value);
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace currency::obs
