// obs tracing — lightweight per-request stage timing with a bounded
// completed-trace ring and a slow-request log.
//
// A request's life in the serving layer crosses several waits that
// end-of-run totals cannot separate: admission wait (the tenant's gate),
// epoch pin, per-component solving (SAT or chase), answer merge, and —
// for mutations — WAL append + fsync.  A TraceSpan is an RAII root
// opened at the request boundary (SessionManager::WithAdmission, or a
// CurrencySession batch entry when called standalone); TraceSpan::Stage
// sub-timers mark the stages.  When the root closes, the assembled Trace
// lands in the tracer's bounded ring buffer (overwriting the oldest),
// and any trace whose total exceeds the slow threshold is additionally
// formatted into the slow-request log.
//
// Stage attachment is thread-local: Stage finds the enclosing root via a
// thread_local pointer, so instrumenting a call site never requires
// threading a context parameter through APIs.  Two consequences, both
// deliberate:
//   * a nested root (a session batch invoked under a manager's span) is
//     inert — the outer span owns the request's trace;
//   * stages opened on pool WORKER threads do not attach (the root lives
//     on the request thread); per-component work is therefore traced as
//     one "solve" stage on the request thread, with the parallel detail
//     visible through the registry's counters instead.
// Stages may carry counter deltas: a StageCounters set names registry
// counters whose values are snapshotted at stage entry and exit, so a
// solve stage reports how many SAT propagations/conflicts and chase
// passes it caused (approximate under concurrent batches — the counters
// are shared — exact when requests run one at a time).
//
// Cost contract (asserted by bench_obs_overhead and the equivalence
// suites):
//   * tracer disabled: a root span is two relaxed atomic loads and no
//     clock read; stages are one thread_local load.  Observably
//     zero-cost.
//   * compiled out (CURRENCY_OBS_OFF): TraceSpan, Stage and ScopedTimer
//     are empty types; every instrumentation site vanishes, clock reads
//     included.
//   * enabled: a handful of clock reads per request.  Time flows into
//     the trace, never back into control flow, so answers, enumeration
//     order and thread-count bit-identity are untouched.

#ifndef CURRENCY_SRC_OBS_TRACE_H_
#define CURRENCY_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace currency::obs {

/// One timed stage inside a trace.
struct TraceStage {
  const char* name = "";  // static-duration string at the call site
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  /// Registry-counter deltas observed over the stage (0 when the stage
  /// carried no StageCounters).
  int64_t sat_propagations = 0;
  int64_t sat_conflicts = 0;
  int64_t chase_passes = 0;
};

/// One completed request trace.
struct Trace {
  std::string tenant;
  std::string procedure;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::vector<TraceStage> stages;

  int64_t DurationNs() const { return end_ns - start_ns; }
  /// One human-readable line: tenant, procedure, total, per-stage
  /// timings with any counter deltas.  The slow log stores these.
  std::string Format() const;
};

/// Tracer configuration, fixed at construction.
struct TraceOptions {
  /// Master switch; also toggleable at runtime via set_enabled.
  bool enabled = false;
  /// Completed traces kept; the oldest is overwritten beyond this.
  size_t ring_capacity = 256;
  /// Traces at least this long are formatted into the slow log.
  int64_t slow_threshold_ns = 100'000'000;  // 100 ms
  /// Formatted slow-request lines kept (oldest dropped beyond this).
  size_t slow_log_capacity = 64;
  /// Time source; null means MonotonicClock.
  const Clock* clock = nullptr;
};

/// Owns the ring buffer and slow log; thread-safe.  One per
/// SessionManager (or one per process, the caller's choice).
class Tracer {
 public:
  explicit Tracer(const TraceOptions& options = {});

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  const Clock& clock() const { return *clock_; }

  /// Completed traces, oldest first (at most ring_capacity).
  std::vector<Trace> RecentTraces() const;
  /// Formatted slow-request lines, oldest first.
  std::vector<std::string> SlowLog() const;
  /// Traces recorded / evicted from the ring since construction.
  int64_t recorded_traces() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  int64_t dropped_traces() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Called by ~TraceSpan; takes ownership of the trace.
  void Record(Trace&& trace);

 private:
  const TraceOptions options_;
  const Clock* clock_;
  std::atomic<bool> enabled_;
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<Trace> ring_;
  std::deque<std::string> slow_log_;
};

/// Registry counters a stage snapshots at entry and exit (all optional;
/// reads are relaxed atomic loads).
struct StageCounters {
  const Counter* sat_propagations = nullptr;
  const Counter* sat_conflicts = nullptr;
  const Counter* chase_passes = nullptr;
};

#ifndef CURRENCY_OBS_OFF

/// RAII root span; see the file comment for attachment and cost rules.
class TraceSpan {
 public:
  /// Inert when `tracer` is null, disabled, or another root is already
  /// open on this thread.
  TraceSpan(Tracer* tracer, std::string_view tenant,
            std::string_view procedure);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }
  /// The calling thread's open root span, if any.
  static TraceSpan* Current();

  /// RAII stage timer attaching to the thread's current root (inert
  /// when there is none).
  class Stage {
   public:
    explicit Stage(const char* name, const StageCounters& counters = {});
    ~Stage();
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;

   private:
    TraceSpan* root_ = nullptr;
    StageCounters counters_;
    TraceStage stage_;
  };

 private:
  Tracer* tracer_ = nullptr;  // null when inert
  Trace trace_;
};

/// RAII latency recorder: observes the elapsed nanoseconds into a
/// histogram at scope exit.  Inert when either pointer is null.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* histogram, const Clock* clock)
      : histogram_(histogram),
        clock_(histogram != nullptr ? ResolveClock(clock) : nullptr),
        start_ns_(clock_ != nullptr ? clock_->NowNanos() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(clock_->NowNanos() - start_ns_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  const Clock* clock_;
  int64_t start_ns_;
};

#else  // CURRENCY_OBS_OFF

// Compile-out: the timing instrumentation vanishes entirely — no clock
// reads, no members, no thread-local traffic.  Counters and gauges stay
// (SessionStats et al. are built on them); what CURRENCY_OBS_OFF buys is
// the removal of every *time* measurement.
class TraceSpan {
 public:
  TraceSpan(Tracer*, std::string_view, std::string_view) {}
  bool active() const { return false; }
  static TraceSpan* Current() { return nullptr; }
  class Stage {
   public:
    explicit Stage(const char*, const StageCounters& = {}) {}
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;
  };
};

class ScopedTimer {
 public:
  ScopedTimer(Histogram*, const Clock*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // CURRENCY_OBS_OFF

}  // namespace currency::obs

#endif  // CURRENCY_SRC_OBS_TRACE_H_
