#include "src/obs/trace.h"

#include <utility>

namespace currency::obs {

std::string Trace::Format() const {
  std::string out = "trace tenant=\"" + tenant + "\" procedure=" + procedure +
                    " total_ns=" + std::to_string(DurationNs());
  for (const TraceStage& s : stages) {
    out += ' ';
    out += s.name;
    out += "=" + std::to_string(s.end_ns - s.start_ns) + "ns";
    if (s.sat_propagations != 0 || s.sat_conflicts != 0 ||
        s.chase_passes != 0) {
      out += "[sat_props=" + std::to_string(s.sat_propagations) +
             " sat_conflicts=" + std::to_string(s.sat_conflicts) +
             " chase_passes=" + std::to_string(s.chase_passes) + ']';
    }
  }
  return out;
}

Tracer::Tracer(const TraceOptions& options)
    : options_(options),
      clock_(ResolveClock(options.clock)),
      enabled_(options.enabled) {}

void Tracer::Record(Trace&& trace) {
  const bool slow = trace.DurationNs() >= options_.slow_threshold_ns;
  std::string slow_line;
  if (slow) slow_line = trace.Format();  // format outside the push below
  std::lock_guard<std::mutex> lock(mu_);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.ring_capacity == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (ring_.size() >= options_.ring_capacity) {
      ring_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    ring_.push_back(std::move(trace));
  }
  if (slow && options_.slow_log_capacity > 0) {
    if (slow_log_.size() >= options_.slow_log_capacity) {
      slow_log_.pop_front();
    }
    slow_log_.push_back(std::move(slow_line));
  }
}

std::vector<Trace> Tracer::RecentTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(ring_.begin(), ring_.end());
}

std::vector<std::string> Tracer::SlowLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(slow_log_.begin(), slow_log_.end());
}

#ifndef CURRENCY_OBS_OFF

namespace {
/// The calling thread's open root span.  Written only by TraceSpan's
/// constructor/destructor on the owning thread.
thread_local TraceSpan* g_current_span = nullptr;
}  // namespace

TraceSpan* TraceSpan::Current() { return g_current_span; }

TraceSpan::TraceSpan(Tracer* tracer, std::string_view tenant,
                     std::string_view procedure) {
  if (tracer == nullptr || !tracer->enabled() || g_current_span != nullptr) {
    return;  // inert: disabled, or nested under another root
  }
  tracer_ = tracer;
  trace_.tenant.assign(tenant.data(), tenant.size());
  trace_.procedure.assign(procedure.data(), procedure.size());
  trace_.start_ns = tracer_->clock().NowNanos();
  g_current_span = this;
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  g_current_span = nullptr;
  trace_.end_ns = tracer_->clock().NowNanos();
  tracer_->Record(std::move(trace_));
}

TraceSpan::Stage::Stage(const char* name, const StageCounters& counters) {
  TraceSpan* root = g_current_span;
  if (root == nullptr || !root->active()) return;
  root_ = root;
  counters_ = counters;
  stage_.name = name;
  stage_.start_ns = root->tracer_->clock().NowNanos();
  if (counters_.sat_propagations != nullptr) {
    stage_.sat_propagations = counters_.sat_propagations->Value();
  }
  if (counters_.sat_conflicts != nullptr) {
    stage_.sat_conflicts = counters_.sat_conflicts->Value();
  }
  if (counters_.chase_passes != nullptr) {
    stage_.chase_passes = counters_.chase_passes->Value();
  }
}

TraceSpan::Stage::~Stage() {
  if (root_ == nullptr) return;
  stage_.end_ns = root_->tracer_->clock().NowNanos();
  // Entry values were stashed in the delta fields; close them out.
  stage_.sat_propagations =
      counters_.sat_propagations != nullptr
          ? counters_.sat_propagations->Value() - stage_.sat_propagations
          : 0;
  stage_.sat_conflicts =
      counters_.sat_conflicts != nullptr
          ? counters_.sat_conflicts->Value() - stage_.sat_conflicts
          : 0;
  stage_.chase_passes =
      counters_.chase_passes != nullptr
          ? counters_.chase_passes->Value() - stage_.chase_passes
          : 0;
  root_->trace_.stages.push_back(stage_);
}

#endif  // CURRENCY_OBS_OFF

}  // namespace currency::obs
