// obs::Clock — the one time source behind every latency histogram and
// trace span, injectable so tests and benchmarks control time exactly.
//
// All of observability reads time through this interface: the serving
// layer's batch latency histograms, the WAL's append/fsync timings, and
// the tracer's span boundaries.  Production code uses MonotonicClock
// (steady_clock, immune to wall-clock steps); tests swap in ManualClock
// and advance it by hand, which makes trace-ring and slow-log behavior
// deterministic down to the nanosecond.
//
// Clock reads are the only thing the observability layer does that is
// not a relaxed atomic bump, so the deterministic-execution contract is
// easy to state: no code path ever *branches* on a clock value in a way
// that reaches a solver, an enumeration, or a thread-pool claim — time
// flows into metrics and traces, never back into answers.  (The
// equivalence suites assert the consequence: instrumented and
// uninstrumented runs return bit-identical results.)

#ifndef CURRENCY_SRC_OBS_CLOCK_H_
#define CURRENCY_SRC_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace currency::obs {

/// Abstract nanosecond time source.  Implementations must be safe to
/// read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// The production clock: std::chrono::steady_clock, monotonic across
/// the process lifetime.
class MonotonicClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// The shared process-wide instance (stateless, so one suffices).
  static const Clock* Get() {
    static const MonotonicClock clock;
    return &clock;
  }
};

/// Test clock: time moves only when the test says so.  Thread-safe so
/// instrumented worker threads may read it while the test advances it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  int64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void Set(int64_t now_ns) {
    now_ns_.store(now_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_ns_;
};

/// Resolves a possibly-null clock option to a usable clock.
inline const Clock* ResolveClock(const Clock* clock) {
  return clock != nullptr ? clock : MonotonicClock::Get();
}

}  // namespace currency::obs

#endif  // CURRENCY_SRC_OBS_CLOCK_H_
