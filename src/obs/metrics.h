// obs::Registry — the process's one vocabulary for numbers that describe
// the runtime: monotonic counters, gauges, and fixed-bucket latency
// histograms, each addressed by (family name, label set) and exposed as
// one coherent snapshot in Prometheus text format or JSON.
//
// Before this layer, telemetry was fragmented: SessionStats, TenantStats,
// SolverStats and the chase counters each lived in their own struct with
// their own naming and no way to export a consistent cross-layer view.
// The registry replaces none of their *data* — those structs survive as
// thin snapshot views — but it owns the canonical instruments they read,
// so serve, sat, chase, wal and exec all publish into one place.
//
// Metric naming convention (enforced by review, documented in
// docs/ARCHITECTURE.md §9):
//
//   currency_<module>_<noun>[_<unit>][_total]
//
//   * module ∈ {serve, sat, chase, wal, exec} — the layer that OWNS the
//     number, not the layer that happens to record it.
//   * counters end in `_total`; gauges and histograms do not.
//   * values carrying a unit name it: `_ns` (nanoseconds), `_bytes`.
//   * labels, not name suffixes, distinguish variants: `tenant` (which
//     session), `procedure` (cps|cop|dcip|ccqa|mutate), `routing`
//     (chase|sat).  Example: the old SessionStats naming drift between
//     `base_solves` and `chase_solves` becomes ONE family,
//     `currency_serve_component_base_solves_total{routing=...}`.
//
// Concurrency: instrument handles are resolved once (mutex-guarded map
// lookup) and then updated lock-free — Counter::Increment, Gauge::Set and
// Histogram::Observe are relaxed atomic operations, cheap enough for the
// serving hot path.  Handles are stable for the registry's lifetime;
// callers cache them (SessionCounters does exactly this).
//
// Cardinality: a family holds at most kMaxSeriesPerFamily distinct label
// sets.  Beyond the cap, every new label set coalesces into the family's
// overflow series (labels {overflow="true"}), so an unbounded tenant
// stream cannot grow the registry without bound — the standard defense
// against label-cardinality explosions.
//
// Determinism contract: nothing in this file reads a clock or branches
// on a measured value; recording a metric cannot perturb answers,
// enumeration order, or thread-count bit-identity.  (Latency recording
// *sites* read obs::Clock; see clock.h for that half of the contract.)

#ifndef CURRENCY_SRC_OBS_METRICS_H_
#define CURRENCY_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace currency::obs {

/// A monotonically increasing count.  Lock-free updates and reads.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can move both ways (queue depth, arena bytes, the
/// last-mutate reuse counts).  Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is higher — a high-water mark.
  void UpdateMax(int64_t value) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (value > cur && !value_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram: bucket upper bounds are set at creation and
/// never change, so Observe is a binary search plus one relaxed atomic
/// increment (plus sum/count bumps) — no locks, no allocation.
///
/// Bucket semantics match Prometheus: bucket i counts observations v with
/// v <= bounds[i] (and > bounds[i-1]); one implicit +Inf bucket catches
/// the rest.  Exposition emits cumulative counts.
class Histogram {
 public:
  void Observe(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Snapshot of per-bucket (non-cumulative) counts; index bounds_.size()
  /// is the +Inf bucket.
  std::vector<int64_t> BucketCounts() const;
  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1),
  /// or 0 when empty.  Observations beyond the last bound report the
  /// last bound — histograms answer "at most", not "exactly".
  int64_t ApproxQuantile(double q) const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<int64_t> bounds);

  const std::vector<int64_t> bounds_;  // ascending, strictly increasing
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> count_{0};
};

/// The default latency bucket scheme: a 1-2-5 series from 1 µs to 10 s,
/// in nanoseconds (19 buckets + Inf).  Chosen so the serving layer's
/// microsecond warm hits and the WAL's millisecond fsyncs land in the
/// resolved middle of the range rather than its edges.
const std::vector<int64_t>& LatencyBucketsNs();

/// One label: key and value.  Label sets are small (1–3 entries here);
/// the registry canonicalizes order by key.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Exposition formats for Registry snapshots.
enum class ExpositionFormat { kText, kJson };

/// The instrument directory; see the file comment.  Get* calls are
/// get-or-create and idempotent; returned pointers are stable until the
/// registry is destroyed and are safe to update from any thread.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry, for callers with no injected instance.
  /// Sessions and managers default to private registries instead, so
  /// tests never see each other's numbers.
  static Registry* Default();

  /// At most this many distinct label sets per family; the rest coalesce
  /// into the overflow series.
  static constexpr int kMaxSeriesPerFamily = 64;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies only when the family is created by this call;
  /// empty means LatencyBucketsNs().
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<int64_t> bounds = {});

  /// Prometheus text exposition: families sorted by name, one # TYPE
  /// line each, series sorted by label string, histograms as cumulative
  /// _bucket{le=...} plus _sum and _count.
  std::string ExposeText() const;
  /// The same snapshot as JSON: {"metrics": [{name, type, labels, ...}]}.
  std::string ExposeJson() const;
  std::string Expose(ExpositionFormat format) const {
    return format == ExpositionFormat::kText ? ExposeText() : ExposeJson();
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;  // canonical (sorted by key)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::vector<int64_t> bounds;  // histograms only
    /// Keyed by the canonical label string; values are stable heap
    /// objects so handles survive map rehashing.
    std::map<std::string, std::unique_ptr<Series>> series;
  };

  /// Returns the series for (name, labels), creating family and series
  /// as needed; on a kind mismatch returns nullptr (the public Get*
  /// wrappers then fall back to a shared dead instrument so callers
  /// never crash, and the mistake is visible in exposition by absence).
  Series* GetSeries(const std::string& name, Kind kind, const Labels& labels,
                    std::vector<int64_t> bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace currency::obs

#endif  // CURRENCY_SRC_OBS_METRICS_H_
